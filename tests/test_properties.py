"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import addressing
from repro.common.config import CacheConfig, DramConfig, TlbConfig
from repro.common.constants import (
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    VA_BITS,
)
from repro.common.rng import DeterministicRng
from repro.cache.cache import Cache
from repro.dram.address_map import AddressMap
from repro.mmu.tlb import SetAssociativeTlb
from repro.vm.frame_allocator import FrameAllocator
from repro.vm.page_table import PageTable

vaddrs = st.integers(min_value=0, max_value=(1 << VA_BITS) - 1)
paddrs = st.integers(min_value=0, max_value=(1 << 44) - 1)


@given(vaddrs)
def test_radix_indices_reconstruct_vpn(vaddr):
    """The four 9-bit indices are exactly the 4 KB VPN, re-sliced."""
    l4, l3, l2, l1 = addressing.radix_indices(vaddr)
    vpn = addressing.page_number(vaddr, PAGE_SIZE_4K)
    assert (((l4 * 512 + l3) * 512 + l2) * 512 + l1) == vpn


@given(vaddrs)
def test_page_split_roundtrip(vaddr):
    for page_size in (PAGE_SIZE_4K, PAGE_SIZE_2M):
        vpn, offset = addressing.split_vaddr(vaddr, page_size)
        assert addressing.page_address(vpn, page_size) + offset == addressing.canonical(vaddr)
        assert 0 <= offset < page_size


@given(vaddrs, paddrs)
def test_replay_address_always_line_of_translation(vaddr, frame_raw):
    """TEMPO's reconstruction is non-speculative for every address."""
    frame = addressing.page_base(frame_raw, PAGE_SIZE_4K)
    line_index = addressing.line_index_in_page(vaddr)
    reconstructed = addressing.replay_address(frame, line_index)
    actual = addressing.cache_line_base(addressing.translate(vaddr, frame))
    assert reconstructed == actual


@given(st.lists(paddrs, min_size=1, max_size=200))
def test_cache_occupancy_never_exceeds_capacity(addresses):
    cache = Cache(CacheConfig(size_bytes=2048, assoc=2))
    capacity = cache.num_sets * cache.assoc
    for address in addresses:
        cache.fill(address)
        assert cache.occupancy <= capacity


@given(st.lists(paddrs, min_size=1, max_size=200))
def test_cache_fill_then_lookup_hits(addresses):
    cache = Cache(CacheConfig(size_bytes=8192, assoc=4))
    for address in addresses:
        cache.fill(address)
        assert cache.lookup(address)  # most-recent line always present


@given(st.lists(paddrs, min_size=1, max_size=100))
def test_address_map_decode_is_total_and_disjoint(addresses):
    amap = AddressMap(DramConfig())
    for address in addresses:
        location = amap.decode(address)
        # Re-encodable: fields identify exactly one bank.
        assert amap.bank_index(address) == (
            location.channel * amap.config.banks_per_channel + location.bank
        )
        # Same-line addresses always share a row.
        assert amap.same_row(address, addressing.cache_line_base(address))


@given(st.lists(st.tuples(vaddrs, paddrs), min_size=1, max_size=60))
def test_tlb_returns_only_inserted_translations(pairs):
    tlb = SetAssociativeTlb(16, 4, PAGE_SIZE_4K)
    truth = {}
    for vaddr, frame in pairs:
        frame = addressing.page_base(frame)
        tlb.insert(vaddr, frame)
        truth[addressing.page_number(vaddr)] = frame
    for vaddr, _ in pairs:
        found = tlb.lookup(vaddr)
        if found is not None:
            assert found == truth[addressing.page_number(vaddr)]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=(1 << 30) - 1),
        min_size=1,
        max_size=40,
        unique_by=lambda value: value >> 12,
    )
)
def test_page_table_walk_agrees_with_mappings(vaddr_seeds):
    """Whatever the OS maps, a subsequent walk must return exactly it."""
    allocator = FrameAllocator(8 * 1024**3, DeterministicRng(0, "prop"))
    table = PageTable(allocator)
    truth = {}
    for seed in vaddr_seeds:
        vbase = addressing.page_base(seed, PAGE_SIZE_4K)
        frame = allocator.alloc_4k()
        table.map(vbase, frame, PAGE_SIZE_4K)
        truth[vbase] = frame
    for vbase, frame in truth.items():
        result = table.walk(vbase + 123)
        assert not result.faulted
        assert result.entry.frame_paddr == frame
        assert result.leaf_level == 1
        assert len(result.accesses) == 4


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["4k", "2m", "free2m"]), min_size=1, max_size=60))
def test_allocator_never_hands_out_overlapping_memory(operations):
    allocator = FrameAllocator(4 * 1024**3, DeterministicRng(1, "prop2"))
    live = []  # (base, size)
    for operation in operations:
        if operation == "4k":
            live.append((allocator.alloc_4k(), PAGE_SIZE_4K))
        elif operation == "2m":
            frame = allocator.try_alloc_2m()
            if frame is not None:
                live.append((frame, PAGE_SIZE_2M))
        elif live and operation == "free2m":
            continue  # freeing 2M regions is not modelled; skip
    spans = sorted(live)
    for (base_a, size_a), (base_b, _) in zip(spans, spans[1:]):
        assert base_a + size_a <= base_b


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=120)
)
def test_bank_timing_monotonic_and_outcomes_valid(accesses):
    from repro.dram.bank import Bank, OUTCOME_CONFLICT, OUTCOME_HIT, OUTCOME_MISS
    from repro.dram.row_policy import OpenRowPolicy

    bank = Bank(0, 16, DramConfig(), OpenRowPolicy())
    now = 0
    last_end = 0
    for row, jump in accesses:
        start, end, outcome = bank.access(row, now)
        assert outcome in (OUTCOME_HIT, OUTCOME_MISS, OUTCOME_CONFLICT)
        assert start >= now
        assert start >= last_end  # bank serializes
        assert end > start
        last_end = end
        now = end + (37 if jump else 0)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 32) - 1),  # paddr
            st.sampled_from(["demand", "pt", "writeback"]),
            st.integers(min_value=0, max_value=3),  # cpu
        ),
        min_size=1,
        max_size=50,
    )
)
def test_controller_serves_everything_exactly_once(requests_spec):
    """Every submitted request is serviced once, with monotone per-bank
    start times and valid outcomes."""
    from repro.common.config import default_system_config
    from repro.sched.controller import MemoryController
    from repro.sched.request import MemoryRequest

    config = default_system_config().with_tempo(False)
    controller = MemoryController(config, None, None)
    submitted = []
    now = 0
    for paddr, kind, cpu in requests_spec:
        request = MemoryRequest(paddr & ~63, kind, cpu=cpu, enqueue_time=now)
        if kind == "writeback":
            controller.submit_async(request, now)
        else:
            finish = controller.submit_and_wait(request, now)
            assert finish is not None
            now = max(now, finish)
        submitted.append(request)
    controller.drain_all()
    assert controller.pending_requests() == 0
    for request in submitted:
        assert request.finish_time is not None
        assert request.outcome in ("hit", "miss", "conflict")
        assert request.start_time >= request.enqueue_time


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**20))
def test_system_simulator_deterministic_under_seeds(seed):
    """Same trace + same seed -> identical cycle counts (spot check)."""
    from repro.common.config import default_system_config
    from repro.sim.system import SystemSimulator
    from repro.workloads.base import TraceBuilder

    def build():
        builder = TraceBuilder("prop", seed=seed % 7)
        region = builder.region("data", 1 << 34)
        for index in range(120):
            builder.read(region.clustered(hot_chunks=32, tail=0.1), gap=1)
        return builder.build()

    config = default_system_config()
    first = SystemSimulator(config, [build()], seed=seed).run().total_cycles
    second = SystemSimulator(config, [build()], seed=seed).run().total_cycles
    assert first == second
