"""End-to-end paper-shape integration tests.

These run real workloads at moderate trace lengths and assert the
*qualitative* results the paper reports.  They are the slowest tests in
the suite (a few seconds each).
"""

import pytest

from repro.common.config import default_system_config
from repro.sim.runner import (
    energy_fraction,
    run_baseline_and_tempo,
    run_workload,
    speedup_fraction,
)

LENGTH = 8000


@pytest.fixture(scope="module")
def xsbench_pair():
    return run_baseline_and_tempo("xsbench", length=LENGTH, seed=0)


def test_fig1_shape_ptw_and_replay_are_major(xsbench_pair):
    baseline, _ = xsbench_pair
    runtime = baseline.core.runtime
    assert runtime.fraction("ptw") > 0.08
    assert runtime.fraction("replay") > 0.08


def test_fig4_shape_reference_fractions(xsbench_pair):
    baseline, _ = xsbench_pair
    refs = baseline.core.dram_refs
    assert 0.10 < refs.fraction("ptw") < 0.60
    assert refs.fraction("replay") > 0.15
    assert refs.leaf_fraction_of_ptw() > 0.60
    assert refs.replay_follows_ptw_rate() > 0.90


def test_fig10_shape_tempo_wins_perf_and_energy(xsbench_pair):
    baseline, tempo = xsbench_pair
    assert 0.05 < speedup_fraction(baseline, tempo) < 0.45
    assert energy_fraction(baseline, tempo) > 0.0
    assert baseline.superpage_fraction > 0.3


def test_fig11_shape_replays_served_by_prefetch(xsbench_pair):
    _, tempo = xsbench_pair
    service = tempo.core.replay_service
    assert service.total > 100
    assert service.fraction("llc") + service.fraction("row_buffer") > 0.9


def test_small_footprint_not_harmed():
    baseline, tempo = run_baseline_and_tempo("blackscholes_small", length=4000, seed=0)
    speedup = speedup_fraction(baseline, tempo)
    assert abs(speedup) < 0.03  # ~no change
    assert abs(energy_fraction(baseline, tempo)) < 0.03


def test_tempo_helps_every_bigdata_workload():
    for name in ("mcf", "graph500", "illustris"):
        baseline, tempo = run_baseline_and_tempo(name, length=5000, seed=0)
        assert speedup_fraction(baseline, tempo) > 0.03, name


def test_superpage_coverage_reduces_walks():
    from dataclasses import replace

    config = default_system_config().with_tempo(False)
    no_thp = config.copy_with(vm=replace(config.vm, thp_enabled=False))
    hugetlb = config.copy_with(vm=replace(config.vm, hugetlbfs_2m=True))
    walks = {}
    for label, cfg in (("4k", no_thp), ("2m", hugetlb)):
        result = run_workload("xsbench", cfg, length=5000, seed=0)
        walks[label] = result.core.dram_refs.walks_with_dram_leaf
    assert walks["2m"] < walks["4k"]


def test_tempo_benefit_shrinks_with_superpages():
    from dataclasses import replace

    config = default_system_config()
    no_thp = config.copy_with(vm=replace(config.vm, thp_enabled=False))
    hugetlb = config.copy_with(vm=replace(config.vm, hugetlbfs_2m=True))
    base_4k, tempo_4k = run_baseline_and_tempo("xsbench", no_thp, length=5000, seed=0)
    base_2m, tempo_2m = run_baseline_and_tempo("xsbench", hugetlb, length=5000, seed=0)
    assert speedup_fraction(base_4k, tempo_4k) > speedup_fraction(base_2m, tempo_2m)
    assert speedup_fraction(base_4k, tempo_4k) > 0.10


def test_row_policies_all_benefit():
    from dataclasses import replace

    config = default_system_config()
    for policy in ("adaptive", "open", "closed"):
        cfg = config.copy_with(row_policy=replace(config.row_policy, policy=policy))
        baseline, tempo = run_baseline_and_tempo("graph500", cfg, length=5000, seed=0)
        assert speedup_fraction(baseline, tempo) > 0.02, policy


def test_imp_interaction_amplifies_tempo():
    from dataclasses import replace

    config = default_system_config()
    imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
    base, tempo = run_baseline_and_tempo("spmv", config, length=6000, seed=0)
    base_imp, tempo_imp = run_baseline_and_tempo("spmv", imp_config, length=6000, seed=0)
    without = speedup_fraction(base, tempo)
    with_imp = speedup_fraction(base_imp, tempo_imp)
    # Paper Fig. 12: TEMPO's relative benefit grows under IMP.
    assert with_imp > without - 0.02
    assert with_imp > 0.05
