"""Tests for the hardware page-table walker (incl. TEMPO tagging)."""

import pytest

from repro.common.addressing import line_index_in_page
from repro.common.config import MmuCacheConfig
from repro.common.constants import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.mmu.mmu_cache import MmuCaches
from repro.mmu.walker import PageTableWalker
from repro.vm.page_table import PageTable

VADDR = 0x1234_5678_9042  # cache line 1 within its 4 KB page


@pytest.fixture
def table(allocator):
    table = PageTable(allocator)
    table.map(VADDR & ~0xFFF, 0xABC000, PAGE_SIZE_4K)
    return table


@pytest.fixture
def walker(table):
    return PageTableWalker(table, MmuCaches(MmuCacheConfig()), tempo_tagging=True)


def test_plan_has_four_steps_for_4k(walker):
    plan = walker.plan(VADDR)
    assert [step.level for step in plan.steps] == [4, 3, 2, 1]
    assert not plan.faulted
    assert plan.frame_paddr == 0xABC000
    assert plan.page_size == PAGE_SIZE_4K


def test_only_leaf_step_is_leaf(walker):
    plan = walker.plan(VADDR)
    assert [step.is_leaf for step in plan.steps] == [False, False, False, True]


def test_cold_walk_all_memory_steps(walker):
    plan = walker.plan(VADDR)
    assert all(not step.from_mmu_cache for step in plan.steps)
    assert len(plan.memory_steps) == 4


def test_complete_fills_mmu_caches_for_upper_levels(walker):
    first = walker.plan(VADDR)
    walker.complete(first)
    second = walker.plan(VADDR)
    cached = [step.from_mmu_cache for step in second.steps]
    assert cached == [True, True, True, False]  # leaf never cached
    assert len(second.memory_steps) == 1


def test_tempo_tagging_carries_replay_line(walker):
    plan = walker.plan(VADDR)
    assert plan.tempo_tagged
    assert plan.replay_line_index == line_index_in_page(VADDR) == 1


def test_tagging_disabled_when_tempo_off(table):
    walker = PageTableWalker(table, MmuCaches(MmuCacheConfig()), tempo_tagging=False)
    plan = walker.plan(VADDR)
    assert not plan.tempo_tagged


def test_2m_walk_has_three_steps_and_2m_line_index(allocator):
    table = PageTable(allocator)
    vaddr = 0x4000_0000 + 3 * 64 + 7
    table.map(0x4000_0000, PAGE_SIZE_2M * 5, PAGE_SIZE_2M)
    walker = PageTableWalker(table, MmuCaches(MmuCacheConfig()), tempo_tagging=True)
    plan = walker.plan(vaddr)
    assert [step.level for step in plan.steps] == [4, 3, 2]
    assert plan.steps[-1].is_leaf
    assert plan.replay_line_index == line_index_in_page(vaddr, PAGE_SIZE_2M) == 3


def test_faulting_plan(walker):
    plan = walker.plan(0x9999_0000_0000)
    assert plan.faulted
    assert plan.entry is None
    assert not plan.tempo_tagged
    # The partial path still shows which levels the walker read.
    assert plan.steps[0].level == 4


def test_faulting_steps_are_not_leaf(walker):
    plan = walker.plan(0x9999_0000_0000)
    assert all(not step.is_leaf for step in plan.steps)


def test_walk_counts(walker):
    walker.plan(VADDR)
    walker.plan(0x9999_0000_0000)
    assert walker.stats.counter("walks").value == 2
    assert walker.stats.counter("faulting_walks").value == 1
    assert walker.stats.counter("tagged_leaf_requests").value == 1


def test_leaf_entry_paddr_matches_page_table(walker, table):
    plan = walker.plan(VADDR)
    assert plan.steps[-1].entry_paddr == table.walk(VADDR).accesses[-1][1]
