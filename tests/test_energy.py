"""Tests for the analytical energy model."""

import pytest

from repro.common.config import EnergyConfig
from repro.common.errors import SimulationError
from repro.dram.bank import OUTCOME_CONFLICT, OUTCOME_HIT, OUTCOME_MISS
from repro.dram.energy import EnergyModel


@pytest.fixture
def model():
    return EnergyModel(EnergyConfig())


def test_outcome_energy_ordering(model):
    config = model.config
    costs = {}
    for outcome in (OUTCOME_HIT, OUTCOME_MISS, OUTCOME_CONFLICT):
        fresh = EnergyModel(config)
        fresh.record_dram_access(outcome)
        costs[outcome] = fresh.dynamic_energy
    assert costs[OUTCOME_HIT] < costs[OUTCOME_MISS] < costs[OUTCOME_CONFLICT]


def test_unknown_outcome_raises(model):
    with pytest.raises(SimulationError):
        model.record_dram_access("explode")


def test_background_scales_with_cycles(model):
    assert model.background_energy(2000) == pytest.approx(2 * model.background_energy(1000))


def test_tempo_static_overhead_charged():
    config = EnergyConfig()
    base = EnergyModel(config, tempo_enabled=False)
    tempo = EnergyModel(config, tempo_enabled=True)
    assert tempo.background_energy(10_000) > base.background_energy(10_000)
    ratio = tempo.background_energy(10_000) / base.background_energy(10_000)
    assert ratio == pytest.approx(1.0 + config.tempo_static_overhead)


def test_total_is_background_plus_dynamic(model):
    model.record_dram_access(OUTCOME_MISS)
    model.record_llc_fill()
    assert model.total_energy(5000) == pytest.approx(
        model.background_energy(5000) + model.dynamic_energy
    )


def test_prefetch_accesses_counted(model):
    model.record_dram_access(OUTCOME_MISS, is_prefetch=True)
    model.record_dram_access(OUTCOME_MISS)
    assert model.stats.counter("prefetch_accesses").value == 1
    assert model.stats.counter("dram_accesses").value == 2


def test_reset(model):
    model.record_dram_access(OUTCOME_MISS)
    model.reset()
    assert model.dynamic_energy == 0.0
    assert model.stats.counter("dram_accesses").value == 0


def test_shorter_runtime_saves_energy_despite_prefetches():
    """The paper's energy argument: TEMPO's extra activations are paid
    back by the static energy of the cycles it removes."""
    config = EnergyConfig()
    baseline = EnergyModel(config, tempo_enabled=False)
    tempo = EnergyModel(config, tempo_enabled=True)
    for _ in range(100):
        baseline.record_dram_access(OUTCOME_CONFLICT)     # slow replays
        tempo.record_dram_access(OUTCOME_MISS, is_prefetch=True)  # prefetch
        tempo.record_dram_access(OUTCOME_HIT)             # fast replay
    assert tempo.total_energy(80_000) < baseline.total_energy(100_000)
