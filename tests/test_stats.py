"""Tests for the statistics primitives."""

from repro.common.stats import Counter, Histogram, StatGroup


def test_counter_add_and_reset():
    counter = Counter("hits")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    assert int(counter) == 5
    counter.reset()
    assert counter.value == 0


def test_histogram_mean_and_total():
    histogram = Histogram("latency")
    histogram.record(10, 2)
    histogram.record(30)
    assert histogram.total() == 3
    assert abs(histogram.mean() - (10 * 2 + 30) / 3) < 1e-12


def test_histogram_empty_mean_is_zero():
    assert Histogram("empty").mean() == 0.0


def test_histogram_percentile_nearest_rank():
    histogram = Histogram("lat")
    for value in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
        histogram.record(value)
    assert histogram.percentile(50) == 50
    assert histogram.percentile(95) == 100
    assert histogram.percentile(99) == 100
    assert histogram.percentile(0) == 10
    assert histogram.percentile(100) == 100


def test_histogram_percentile_weighted_buckets():
    histogram = Histogram("lat")
    histogram.record(5, 98)
    histogram.record(500, 2)
    assert histogram.percentile(50) == 5
    assert histogram.percentile(95) == 5
    assert histogram.percentile(99) == 500


def test_histogram_percentile_empty_and_bounds():
    import pytest

    empty = Histogram("empty")
    assert empty.percentile(99) == 0
    with pytest.raises(ValueError):
        empty.percentile(101)
    with pytest.raises(ValueError):
        empty.percentile(-1)


def test_histogram_min_max():
    histogram = Histogram("lat")
    assert histogram.min() == 0 and histogram.max() == 0
    histogram.record(7)
    histogram.record(3)
    assert histogram.min() == 3
    assert histogram.max() == 7


def test_stat_group_creates_counters_on_demand():
    group = StatGroup("tlb")
    group.counter("hits").add()
    group.counter("hits").add()
    assert group.as_dict() == {"tlb.hits": 2}


def test_stat_group_ratio():
    group = StatGroup("g")
    group.counter("hits").add(3)
    group.counter("misses").add(1)
    assert group.ratio("hits", "misses") == 0.75
    assert StatGroup("empty").ratio("hits", "misses") == 0.0


def test_stat_group_nested_export():
    group = StatGroup("dram")
    group.child("bank").counter("hit").add(2)
    flat = group.as_dict()
    assert flat["dram.bank.hit"] == 2


def test_stat_group_histogram_export():
    group = StatGroup("g")
    group.histogram("lat").record(100)
    flat = group.as_dict()
    assert flat["g.lat.total"] == 1
    assert flat["g.lat.mean"] == 100.0


def test_stat_group_exports_histogram_percentiles():
    group = StatGroup("g")
    histogram = group.histogram("lat")
    histogram.record(10, 99)
    histogram.record(1000, 1)
    flat = group.as_dict()
    assert flat["g.lat.p50"] == 10
    assert flat["g.lat.p95"] == 10
    assert flat["g.lat.p99"] == 10
    histogram.record(1000, 50)
    assert group.as_dict()["g.lat.p95"] == 1000


def test_stat_group_reset_recurses():
    group = StatGroup("root")
    group.counter("a").add()
    group.child("nested").counter("b").add()
    group.histogram("h").record(1)
    group.reset()
    flat = group.as_dict()
    assert flat["root.a"] == 0
    assert flat["root.nested.b"] == 0
    assert flat["root.h.total"] == 0
