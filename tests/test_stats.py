"""Tests for the statistics primitives."""

from repro.common.stats import Counter, Histogram, StatGroup


def test_counter_add_and_reset():
    counter = Counter("hits")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    assert int(counter) == 5
    counter.reset()
    assert counter.value == 0


def test_histogram_mean_and_total():
    histogram = Histogram("latency")
    histogram.record(10, 2)
    histogram.record(30)
    assert histogram.total() == 3
    assert abs(histogram.mean() - (10 * 2 + 30) / 3) < 1e-12


def test_histogram_empty_mean_is_zero():
    assert Histogram("empty").mean() == 0.0


def test_stat_group_creates_counters_on_demand():
    group = StatGroup("tlb")
    group.counter("hits").add()
    group.counter("hits").add()
    assert group.as_dict() == {"tlb.hits": 2}


def test_stat_group_ratio():
    group = StatGroup("g")
    group.counter("hits").add(3)
    group.counter("misses").add(1)
    assert group.ratio("hits", "misses") == 0.75
    assert StatGroup("empty").ratio("hits", "misses") == 0.0


def test_stat_group_nested_export():
    group = StatGroup("dram")
    group.child("bank").counter("hit").add(2)
    flat = group.as_dict()
    assert flat["dram.bank.hit"] == 2


def test_stat_group_histogram_export():
    group = StatGroup("g")
    group.histogram("lat").record(100)
    flat = group.as_dict()
    assert flat["g.lat.total"] == 1
    assert flat["g.lat.mean"] == 100.0


def test_stat_group_reset_recurses():
    group = StatGroup("root")
    group.counter("a").add()
    group.child("nested").counter("b").add()
    group.histogram("h").record(1)
    group.reset()
    flat = group.as_dict()
    assert flat["root.a"] == 0
    assert flat["root.nested.b"] == 0
    assert flat["root.h.total"] == 0
