"""Fixture-based self-tests for every simlint rule, plus the
zero-findings gate over ``src/repro`` and the CLI surface.

Each rule gets one known-bad snippet that must fire and one known-good
snippet that must stay silent -- the static proof that the rule catches
what it claims and nothing else.
"""

import io
import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    ALL_RULES,
    RULES_BY_ID,
    LintConfig,
    lint_paths,
)
from repro.lint.engine import module_name_for, parse_module

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def lint_snippet(tmp_path, source, relpath="repro/sim/snippet.py", only=None):
    """Write *source* under tmp_path/*relpath* and lint it; *only*
    restricts to one rule id."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    rules = [RULES_BY_ID[only]] if only else None
    return lint_paths([str(path)], rules=rules)


def rule_ids(findings):
    return sorted({finding.rule_id for finding in findings})


# ----------------------------------------------------------------------
# SL001 no-nondeterminism


def test_sl001_fires_on_time_random_and_set_iteration(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "import time\n"
        "import random\n"
        "from uuid import uuid4\n"
        "def f(items):\n"
        "    for x in set(items):\n"
        "        pass\n"
        "    for y in {1, 2}:\n"
        "        pass\n",
        only="SL001",
    )
    assert len(findings) == 5
    assert rule_ids(findings) == ["SL001"]


def test_sl001_tracks_locals_bound_to_sets(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def f(items):\n"
        "    seen = set(items)\n"
        "    return [x for x in seen]\n",
        only="SL001",
    )
    assert len(findings) == 1


def test_sl001_good_code_is_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "import bisect\n"
        "def f(items):\n"
        "    seen = set(items)\n"
        "    if 3 in seen:\n"
        "        return sorted(seen)\n"
        "    return [x for x in sorted(set(items))]\n",
        only="SL001",
    )
    assert findings == []


def test_sl001_only_applies_to_timing_critical_packages(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "import time\n",
        relpath="repro/obs/profiling.py",
        only="SL001",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL002 cache-key-completeness

GOOD_CONFIG = """
from dataclasses import dataclass, field

@dataclass
class SubConfig:
    depth: int = 2

@dataclass
class SystemConfig:
    sub: SubConfig = field(default_factory=SubConfig)
    cores: int = 1
    label: str = "x"
"""

BAD_CONFIG = """
from dataclasses import dataclass, field

@dataclass
class SubConfig:
    depth: int = 2

@dataclass
class OrphanConfig:
    tunable: int = 3

@dataclass
class SystemConfig:
    sub: SubConfig = field(default_factory=SubConfig)
    sizes: tuple = ()
    KNOB = 7
"""


def test_sl002_fires_on_bare_attr_bad_type_and_orphan(tmp_path):
    findings = lint_snippet(tmp_path, BAD_CONFIG, relpath="config.py", only="SL002")
    messages = "\n".join(finding.message for finding in findings)
    assert len(findings) == 3
    assert "KNOB" in messages  # bare class attribute
    assert "sizes" in messages  # non-scalar field type
    assert "OrphanConfig" in messages  # unreachable dataclass


def test_sl002_good_config_is_silent(tmp_path):
    assert lint_snippet(tmp_path, GOOD_CONFIG, relpath="config.py", only="SL002") == []


def test_sl002_fires_on_incomplete_cell_identity(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "class SimCell:\n"
        "    def identity(self):\n"
        "        return {'schema': 1}\n",
        relpath="cells.py",
        only="SL002",
    )
    messages = "\n".join(finding.message for finding in findings)
    assert "config_hash" in messages
    assert "'traces'" in messages and "'seed'" in messages


def test_sl002_real_identity_shape_is_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "from repro.obs.manifest import config_hash\n"
        "class SimCell:\n"
        "    def identity(self):\n"
        "        return {\n"
        "            'schema': 1,\n"
        "            'package_version': '1',\n"
        "            'config_sha256': config_hash(self.config),\n"
        "            'traces': [],\n"
        "            'seed': self.seed,\n"
        "        }\n",
        relpath="cells.py",
        only="SL002",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL003 schema-drift

RESULT_MODULE = """
class PieceBreakdown:
    __slots__ = ("covered", "uncovered")

class SimulationResult:
    def __init__(self, covered, manifest=None):
        self.covered = covered
        self.manifest = manifest
"""

SERIALIZER_COVERING = """
def result_to_payload(result):
    return {"covered": result.covered, "uncovered": result.uncovered}

def payload_to_result(payload):
    return payload
"""

SERIALIZER_DRIFTED = """
def result_to_payload(result):
    return {"covered": result.covered}

def payload_to_result(payload):
    return payload
"""


def _lint_pair(tmp_path, serializer_source):
    (tmp_path / "metrics.py").write_text(RESULT_MODULE)
    (tmp_path / "serialize.py").write_text(serializer_source)
    return lint_paths([str(tmp_path)], rules=[RULES_BY_ID["SL003"]])


def test_sl003_fires_on_uncovered_field(tmp_path):
    findings = _lint_pair(tmp_path, SERIALIZER_DRIFTED)
    assert len(findings) == 1
    assert "uncovered" in findings[0].message


def test_sl003_covered_schema_and_manifest_exclusion_are_silent(tmp_path):
    assert _lint_pair(tmp_path, SERIALIZER_COVERING) == []


# ----------------------------------------------------------------------
# SL004 stat-registration


def test_sl004_fires_on_direct_primitive_construction(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "from repro.common.stats import Counter, Histogram\n"
        "hits = Counter('hits')\n"
        "lat = Histogram('latency')\n",
        only="SL004",
    )
    assert len(findings) == 2


def test_sl004_group_factories_are_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "from repro.common.stats import StatGroup\n"
        "stats = StatGroup('tlb')\n"
        "stats.counter('hits').add()\n"
        "stats.histogram('latency').record(3)\n",
        only="SL004",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL005 no-config-mutation


def test_sl005_fires_on_config_field_assignment(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def tweak(config):\n"
        "    config.num_cores = 4\n"
        "class Sim:\n"
        "    def adjust(self):\n"
        "        self.config.tempo.enabled = False\n",
        only="SL005",
    )
    assert len(findings) == 2


def test_sl005_storing_and_copying_configs_is_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "from dataclasses import replace\n"
        "class Sim:\n"
        "    def __init__(self, config):\n"
        "        self.config = config\n"
        "    def variant(self):\n"
        "        return replace(self.config, num_cores=2)\n",
        only="SL005",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL006 no-float-cycles


def test_sl006_fires_on_division_and_float_literals(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "class Core:\n"
        "    def step(self, n):\n"
        "        self.total_cycles = n / 2\n"
        "        self.time += 1.5\n",
        only="SL006",
    )
    assert len(findings) == 2


def test_sl006_integer_arithmetic_is_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "class Core:\n"
        "    def step(self, n):\n"
        "        self.total_cycles = n // 2\n"
        "        self.time += 3\n"
        "        ratio = self.time / 100\n",  # float result, non-cycle target
        only="SL006",
    )
    assert findings == []


def test_sl006_only_applies_to_timing_critical_packages(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "class Profiler:\n"
        "    def stop(self, started):\n"
        "        self.wall_time = 1.5\n",
        relpath="repro/obs/prof.py",
        only="SL006",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL007 no-print


def test_sl007_fires_in_library_code(tmp_path):
    findings = lint_snippet(
        tmp_path, "def f():\n    print('debug')\n", relpath="repro/dram/x.py", only="SL007"
    )
    assert len(findings) == 1


def test_sl007_fires_on_stdout_write_in_library_code(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "import sys\ndef f():\n    sys.stdout.write('chatter')\n",
        relpath="repro/obs/x.py",
        only="SL007",
    )
    assert len(findings) == 1
    assert "sys.stdout.write" in findings[0].message


def test_sl007_stderr_and_caller_streams_are_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "import sys\n"
        "def f(out):\n"
        "    sys.stderr.write('progress\\n')\n"
        "    out.write('result\\n')\n",
        relpath="repro/obs/x.py",
        only="SL007",
    )
    assert findings == []


def test_sl007_per_file_audit_of_library_is_clean():
    """Per-file audit: no library module prints or writes to stdout.

    Runs SL007 over every file under ``src/repro`` individually so a
    regression names the exact offending module."""
    from repro.lint.engine import discover_files

    dirty = []
    for path in discover_files([SRC_REPRO]):
        findings = lint_paths([path], rules=[RULES_BY_ID["SL007"]])
        if findings:
            dirty.append((path, [f.message for f in findings]))
    assert dirty == []


def test_sl007_cli_is_exempt_and_docstrings_do_not_count(tmp_path):
    assert (
        lint_snippet(tmp_path, "print('usage')\n", relpath="repro/cli.py", only="SL007")
        == []
    )
    assert (
        lint_snippet(
            tmp_path,
            '"""Example::\n\n    print(x)\n"""\n',
            relpath="repro/dram/x.py",
            only="SL007",
        )
        == []
    )


# ----------------------------------------------------------------------
# SL008 no-mutable-defaults


def test_sl008_fires_on_mutable_defaults(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def f(a=[], b={}, c=set(), d=dict()):\n    pass\n",
        only="SL008",
    )
    assert len(findings) == 4


def test_sl008_none_default_is_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def f(a=None, b=(), c='x', d=0):\n    pass\n",
        only="SL008",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL009 no-bare-exceptions


def test_sl009_fires_on_builtin_raises(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def f(kind):\n"
        "    if kind == 'a':\n"
        "        raise ValueError('bad kind %r' % kind)\n"
        "    if kind == 'b':\n"
        "        raise Exception('boom')\n"
        "    raise AssertionError('unreachable')\n",
        relpath="repro/sched/snippet.py",
        only="SL009",
    )
    assert len(findings) == 3
    assert all(f.rule_id == "SL009" for f in findings)


def test_sl009_repro_errors_reraise_and_stubs_are_silent(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "from repro.common.errors import ConfigError, SimulationError\n"
        "def f(kind):\n"
        "    if kind is None:\n"
        "        raise ConfigError('no kind', context={'kind': kind})\n"
        "    try:\n"
        "        g()\n"
        "    except SimulationError:\n"
        "        raise\n"
        "def stub():\n"
        "    raise NotImplementedError\n",
        relpath="repro/sched/snippet.py",
        only="SL009",
    )
    assert findings == []


def test_sl009_only_applies_to_timing_critical_packages(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def f():\n    raise ValueError('host-side code may use builtins')\n",
        relpath="repro/exec/snippet.py",
        only="SL009",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Engine behaviour


def test_inline_pragma_suppresses_single_rule(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "def f():\n"
        "    print('one')  # simlint: disable=SL007\n"
        "    print('two')  # simlint: disable\n"
        "    print('three')\n",
        only="SL007",
    )
    assert len(findings) == 1
    assert findings[0].line == 4


def test_config_disable_and_per_file_ignores(tmp_path):
    path = tmp_path / "repro" / "sim" / "x.py"
    path.parent.mkdir(parents=True)
    path.write_text("def f():\n    print('x')\n")
    assert lint_paths([str(path)], config=LintConfig(disabled={"SL007"})) == []
    assert (
        lint_paths(
            [str(path)],
            config=LintConfig(per_file_ignores={"repro/sim/x.py": ["SL007"]}),
        )
        == []
    )


def test_module_name_resolution():
    assert module_name_for(os.path.join("src", "repro", "sim", "system.py")) == (
        "repro.sim.system"
    )
    assert module_name_for(os.path.join("src", "repro", "sim", "__init__.py")) == (
        "repro.sim"
    )
    assert module_name_for("standalone.py") == "standalone"


def test_syntax_errors_are_skipped_not_crashed(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    assert parse_module(str(bad)) is None
    assert lint_paths([str(bad)]) == []


def test_every_rule_has_id_severity_rationale_and_fixit():
    seen = set()
    for rule in ALL_RULES:
        assert rule.rule_id.startswith("SL") and len(rule.rule_id) == 5
        assert rule.rule_id not in seen
        seen.add(rule.rule_id)
        assert rule.severity in ("error", "warning")
        assert rule.rationale and rule.fixit and rule.name


# ----------------------------------------------------------------------
# The gate itself: the shipped tree is clean.


def test_src_repro_has_zero_findings():
    findings = lint_paths([SRC_REPRO])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


# ----------------------------------------------------------------------
# CLI surface


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_lint_clean_tree_exits_zero():
    code, output = run_cli("lint", SRC_REPRO)
    assert code == 0
    assert "no findings" in output


def test_cli_lint_findings_exit_one_and_json(tmp_path):
    path = tmp_path / "repro" / "mmu" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text("import random\n")
    code, output = run_cli("lint", str(path))
    assert code == 1
    assert "SL001" in output

    code, output = run_cli("lint", str(path), "--format", "json")
    assert code == 1
    payload = json.loads(output)
    assert payload["counts"]["error"] == 1
    assert payload["findings"][0]["rule"] == "SL001"

    code, output = run_cli("lint", str(path), "--disable", "SL001")
    assert code == 0


def test_cli_lint_rejects_unknown_rule_and_missing_path(tmp_path):
    code, output = run_cli("lint", "--disable", "SL999", str(tmp_path))
    assert code == 2 and "unknown rule" in output
    code, output = run_cli("lint", str(tmp_path / "missing"))
    assert code == 2 and "no such path" in output


def test_cli_list_rules_mentions_every_rule():
    code, output = run_cli("lint", "--list-rules")
    assert code == 0
    for rule in ALL_RULES:
        assert rule.rule_id in output


# ----------------------------------------------------------------------
# The strict-typing gate, when the toolchain is present.


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_gate():
    process = subprocess.run(
        [shutil.which("mypy"), "--strict", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert process.returncode == 0, process.stdout + process.stderr
