"""Determinism tests for the seeded RNG streams."""

from repro.common.rng import DeterministicRng


def test_same_seed_same_stream():
    first = [DeterministicRng(42, "x").randint(0, 1000) for _ in range(1)]
    second = [DeterministicRng(42, "x").randint(0, 1000) for _ in range(1)]
    assert first == second


def test_purpose_separates_streams():
    a = DeterministicRng(42, "a")
    b = DeterministicRng(42, "b")
    assert [a.randint(0, 10**9) for _ in range(5)] != [
        b.randint(0, 10**9) for _ in range(5)
    ]


def test_derive_is_deterministic():
    parent = DeterministicRng(7, "root")
    child_a = parent.derive("leaf")
    child_b = DeterministicRng(7, "root").derive("leaf")
    assert [child_a.random() for _ in range(3)] == [child_b.random() for _ in range(3)]


def test_derive_independent_of_parent_consumption():
    parent = DeterministicRng(7, "root")
    parent.randint(0, 100)  # consume from the parent stream
    child = parent.derive("leaf")
    fresh_child = DeterministicRng(7, "root").derive("leaf")
    assert child.random() == fresh_child.random()


def test_geometric_mean_roughly_matches():
    rng = DeterministicRng(3, "geo")
    samples = [rng.geometric(4) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 3.4 < mean < 4.6
    assert min(samples) >= 1


def test_geometric_degenerate_mean():
    rng = DeterministicRng(3, "geo1")
    assert all(rng.geometric(1) == 1 for _ in range(10))


def test_zipf_index_in_range_and_skewed():
    rng = DeterministicRng(9, "zipf")
    samples = [rng.zipf_index(1000, skew=0.9) for _ in range(3000)]
    assert all(0 <= sample < 1000 for sample in samples)
    # Head-heavy: the first decile should receive far more than 10%.
    head = sum(1 for sample in samples if sample < 100)
    assert head > len(samples) * 0.3


def test_zipf_index_tiny_population():
    rng = DeterministicRng(9, "zipf2")
    assert rng.zipf_index(1) == 0


def test_choice_and_shuffle_deterministic():
    rng_a = DeterministicRng(5, "c")
    rng_b = DeterministicRng(5, "c")
    sequence_a = list(range(20))
    sequence_b = list(range(20))
    rng_a.shuffle(sequence_a)
    rng_b.shuffle(sequence_b)
    assert sequence_a == sequence_b
    assert rng_a.choice("abcdef") == rng_b.choice("abcdef")
