"""Smoke tests for the per-figure experiment drivers.

These run with tiny traces: they verify structure and basic sanity, not
the paper-shape assertions (those live in test_integration.py and run on
longer traces).
"""

import pytest

from repro.analysis import experiments
from repro.analysis.expectations import PAPER_EXPECTATIONS
from repro.analysis.tables import format_table, render_experiment

SHORT = dict(workloads=("xsbench",), length=1200, seed=0)


def test_fig01_structure():
    result = experiments.fig01_runtime_breakdown(**SHORT)
    assert result["figure"] == "fig01"
    row = result["rows"][0]
    assert row["workload"] == "xsbench"
    assert 0 <= row["dram_ptw_fraction"] <= 1


def test_fig04_structure():
    result = experiments.fig04_dram_reference_breakdown(**SHORT)
    row = result["rows"][0]
    total = row["ptw_fraction"] + row["replay_fraction"] + row["other_fraction"]
    assert total == pytest.approx(1.0)


def test_fig10_structure():
    result = experiments.fig10_performance_energy(**SHORT)
    row = result["rows"][0]
    assert "performance_improvement" in row
    assert 0 <= row["superpage_fraction"] <= 1


def test_fig11_left_structure():
    result = experiments.fig11_replay_service(**SHORT)
    row = result["rows"][0]
    total = row["llc_fraction"] + row["row_buffer_fraction"] + row["unaided_fraction"]
    assert total == pytest.approx(1.0)


def test_fig12_structure():
    result = experiments.fig12_imp_interaction(**SHORT)
    row = result["rows"][0]
    assert "improvement_with_imp" in row and "improvement_no_imp" in row


def test_fig13_variants_cover_paper_configs():
    result = experiments.fig13_superpage_sensitivity(
        workloads=("xsbench",), length=800, seed=0
    )
    variants = {row["variant"] for row in result["rows"]}
    assert variants == {
        "4k-only", "thp-memhog75", "thp-memhog50", "thp-memhog25",
        "thp-memhog0", "hugetlbfs-2m", "hugetlbfs-1g",
    }
    by_variant = {row["variant"]: row for row in result["rows"]}
    assert by_variant["4k-only"]["superpage_fraction"] == 0.0
    assert by_variant["hugetlbfs-2m"]["superpage_fraction"] > 0.9


def test_fig14_covers_three_policies():
    result = experiments.fig14_row_policies(**SHORT)
    assert {row["policy"] for row in result["rows"]} == {"adaptive", "open", "closed"}


def test_fig15_sweeps_waits():
    result = experiments.fig15_wait_cycles(
        workloads=("xsbench",), length=1200, seed=0, waits=(0, 10)
    )
    assert {row["wait_cycles"] for row in result["rows"]} == {0, 10}


def test_fig16_structure():
    result = experiments.fig16_bliss(
        mixes=[("xsbench", "bzip2_small")], length=700,
        prefetch_weights=(1,), grace_periods=(15,),
    )
    assert result["weight_rows"][0]["prefetch_weight"] == 0.5
    assert "ws_improvement" in result["grace_rows"][0]


def test_fig17_structure():
    result = experiments.fig17_subrows(
        mixes=[("xsbench", "bzip2_small")], length=600, dedicated_options=(0, 2)
    )
    assert {row["allocation"] for row in result["rows"]} == {"foa", "poa"}
    assert {row["dedicated_subrows"] for row in result["rows"]} == {0, 2}


def test_expectations_cover_every_figure():
    assert set(PAPER_EXPECTATIONS) == {
        "fig01", "fig04", "fig10", "fig11_left", "fig11_right",
        "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    }
    assert all("claim" in entry for entry in PAPER_EXPECTATIONS.values())


def test_format_table():
    table = format_table(
        [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}], title="demo"
    )
    assert "demo" in table
    assert "0.500" in table
    assert format_table([]) == "(no rows)"


def test_render_experiment_includes_claim():
    rendered = render_experiment(
        {"figure": "fig01", "rows": [{"workload": "x", "dram_ptw_fraction": 0.2}]}
    )
    assert "fig01" in rendered
    assert "paper:" in rendered
