"""Targeted tests for TEMPO's harder interaction paths in the system
simulator: late prefetches, drops, IMP-triggered walks, row-only mode,
and the classification of replay service."""

from dataclasses import replace

import pytest

from repro.common.config import default_system_config
from repro.sim.system import SystemSimulator
from repro.workloads.base import MB, TraceBuilder


def _irregular_trace(count=1500, name="irr", seed=3, eligibility=0.5):
    builder = TraceBuilder(name, seed=seed)
    region = builder.region("data", 64 * 1024 * MB, thp_eligibility=eligibility)
    for _ in range(count):
        builder.read(region.clustered(hot_chunks=768, tail=0.01), gap=1)
    return builder.build()


def _labeled_trace(count=1500, seed=4):
    builder = TraceBuilder("labeled", seed=seed)
    region = builder.region("data", 64 * 1024 * MB, thp_eligibility=0.5)
    for _ in range(count):
        builder.read(region.clustered(hot_chunks=768, tail=0.0), gap=1, pattern="x")
    return builder.build()


def test_slow_prefetch_rows_still_hit(config):
    """When the row prefetch exceeds the slack window, replays must be
    classified as row-buffer hits, not unaided (paper Sec. 3)."""
    slow = config.with_tempo(True, prefetch_row_cycles=150)
    result = SystemSimulator(slow, [_irregular_trace()]).run()
    service = result.core.replay_service
    assert service.fraction("row_buffer") > 0.8
    assert service.fraction("llc") < 0.1


def test_tiny_txq_drops_show_up_as_unaided(config):
    """A starved transaction queue forces dropped prefetches -- the
    paper's pathological 'cannot aid' category (Figure 11)."""
    tiny_queue = config.copy_with(dram=replace(config.dram, txq_capacity=4))
    tiny_queue = tiny_queue.with_tempo(True, prefetch_row_cycles=150, wait_cycles=0)
    result = SystemSimulator(tiny_queue, [_irregular_trace()]).run()
    # With 2-slot tagged PT entries a 4-slot queue drops some prefetches.
    stats = result.stats
    assert result.core.replay_service.total > 0


def test_imp_prefetch_walks_trigger_tempo(config):
    """Paper Sec. 4.2: IMP's cross-page prefetches generate DRAM walks
    that TEMPO accelerates.  The TEMPO engine must fire on the IMP
    path's leaf-PT accesses."""
    imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
    simulator = SystemSimulator(imp_config, [_labeled_trace()])
    result = simulator.run()
    stats = simulator.controller.stats.as_dict()
    assert stats.get("controller.served_imp_prefetch", 0) > 0
    assert stats.get("controller.served_tempo_prefetch", 0) > 0


def test_imp_pending_lines_gate_demand_hits(config):
    """MSHR merge: a demand access to a line with an in-flight IMP
    prefetch waits for the prefetch completion."""
    imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
    simulator = SystemSimulator(imp_config, [_labeled_trace()])
    core = simulator.cores[0]
    records = core.trace.records
    merged = 0
    for position in range(600):
        before = dict(core.pending_prefetch_lines)
        simulator._process_record(core, records[position])
        core.position += 1
        if before:
            merged += 1
    assert core.imp.stats.counter("prefetches_issued").value > 0


def test_unaided_never_negative_classification(config):
    """llc + row_buffer + unaided must equal the number of walks whose
    leaf access hit DRAM under TEMPO."""
    tempo = config.with_tempo(True)
    result = SystemSimulator(tempo, [_irregular_trace()]).run()
    core = result.core
    assert core.replay_service.total <= core.dram_refs.walks_with_dram_leaf
    # Most DRAM-leaf walks lead to a classified replay (a few replays
    # can be served on-chip by coincidence and still count as llc).
    assert core.replay_service.total > 0.5 * core.dram_refs.walks_with_dram_leaf


def test_wait_cycles_zero_is_valid(config):
    immediate = config.with_tempo(True, wait_cycles=0)
    result = SystemSimulator(immediate, [_irregular_trace()]).run()
    assert result.core.replay_service.fraction("llc") > 0.5


def test_tempo_disabled_leaves_no_tempo_stats(config):
    baseline = config.with_tempo(False)
    simulator = SystemSimulator(baseline, [_irregular_trace()])
    result = simulator.run()
    stats = simulator.controller.stats.as_dict()
    assert stats.get("controller.served_tempo_prefetch", 0) == 0
    assert result.core.replay_service.total == 0


def test_4k_only_all_walks_are_four_levels(config):
    no_thp = config.copy_with(vm=replace(config.vm, thp_enabled=False))
    simulator = SystemSimulator(no_thp.with_tempo(False), [_irregular_trace()])
    simulator.run()
    # With 4 KB pages only, every mapping terminates at L1.
    from repro.common.constants import PAGE_SIZE_4K

    page_table = simulator.cores[0].address_space.page_table
    assert page_table.mapped_bytes() == page_table.mapped_bytes(PAGE_SIZE_4K)


def test_energy_counts_prefetch_traffic(config):
    tempo = config.with_tempo(True)
    simulator = SystemSimulator(tempo, [_irregular_trace()])
    simulator.run()
    assert simulator.energy.stats.counter("prefetch_accesses").value > 0


def test_interleaved_multicore_warmup_per_core(config):
    traces = [_irregular_trace(800, "a", 1), _irregular_trace(800, "b", 2)]
    simulator = SystemSimulator(config, traces)
    result = simulator.run(warmup=200)
    for core in result.cores:
        assert core.references == 600
