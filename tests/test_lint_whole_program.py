"""Fixture-based self-tests for the whole-program rules SL010-SL014,
the call-graph engine underneath them, the summary cache, the baseline
workflow, and the ``repro lint --whole-program`` CLI surface.

Each rule gets a known-bad fixture project that must fire and a
known-good variant that must stay silent -- the static proof that the
interprocedural analysis catches what it claims and nothing else.
"""

import dataclasses
import io
import json
import os

from repro.cli import main as cli_main
from repro.lint import lint_paths
from repro.lint.engine import parse_module
from repro.lint.whole_program import (
    Baseline,
    BaselineError,
    SummaryCache,
    WHOLE_PROGRAM_RULE_CLASSES,
    build_whole_program_rules,
    extract_summary,
    finding_fingerprint,
)
from repro.lint.whole_program.graph import FALLBACK_EXCLUDED
from repro.lint.whole_program.rules import WholeProgramAnalysis

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def write_project(tmp_path, files):
    """Write ``{relpath: source}`` under *tmp_path*; returns the root."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(tmp_path)


def wp_lint(tmp_path, files, only=None):
    """Lint a fixture project with the whole-program rules only."""
    root = write_project(tmp_path, files)
    rules = build_whole_program_rules()
    if only is not None:
        rules = [rule for rule in rules if rule.rule_id == only]
    return lint_paths([root], rules=rules)


def analysis_for(tmp_path, files):
    root = write_project(tmp_path, files)
    modules = []
    for dirpath, _, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                module = parse_module(os.path.join(dirpath, filename))
                if module is not None:
                    modules.append(module)
    return WholeProgramAnalysis(modules)


def rule_ids(findings):
    return sorted({finding.rule_id for finding in findings})


# ----------------------------------------------------------------------
# SL010 worker-boundary-picklability


def test_sl010_fires_on_lambda_target_and_args(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import multiprocessing as mp\n"
                "def launch():\n"
                "    proc = mp.Process(target=lambda: 1, args=(lambda: 2,))\n"
                "    proc.start()\n"
            )
        },
        only="SL010",
    )
    assert rule_ids(findings) == ["SL010"]
    messages = " | ".join(finding.message for finding in findings)
    assert "lambda passed as Process target=" in messages
    assert "lambda inside Process args=" in messages


def test_sl010_fires_on_nested_function_and_module_mutable(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import multiprocessing as mp\n"
                "SHARED = {}\n"
                "def worker(x):\n"
                "    return x\n"
                "def launch():\n"
                "    def inner():\n"
                "        return 1\n"
                "    proc = mp.Process(target=inner, args=(SHARED,))\n"
                "    proc.start()\n"
            )
        },
        only="SL010",
    )
    messages = " | ".join(finding.message for finding in findings)
    assert "closures cannot be pickled" in messages
    assert "module-level mutable 'SHARED'" in messages


def test_sl010_good_boundary_is_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import multiprocessing as mp\n"
                "def worker(payload):\n"
                "    return payload\n"
                "def launch(queue):\n"
                "    proc = mp.Process(target=worker, args=(1, 'x'))\n"
                "    proc.start()\n"
            )
        },
        only="SL010",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL011 worker-shared-state-mutation


def test_sl011_fires_on_module_state_mutation_below_worker(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import multiprocessing as mp\n"
                "TOTALS = {}\n"
                "def record(key):\n"
                "    TOTALS[key] = 1\n"
                "def worker(key):\n"
                "    record(key)\n"
                "def launch():\n"
                "    mp.Process(target=worker, args=('a',)).start()\n"
            )
        },
        only="SL011",
    )
    assert rule_ids(findings) == ["SL011"]
    assert "module-level state" in findings[0].message
    assert "reachable from worker entry point" in findings[0].message


def test_sl011_good_worker_is_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import multiprocessing as mp\n"
                "def worker(key):\n"
                "    local = {}\n"
                "    local[key] = 1\n"
                "    return local\n"
                "def launch():\n"
                "    mp.Process(target=worker, args=('a',)).start()\n"
            )
        },
        only="SL011",
    )
    assert findings == []


def test_sl011_covers_pool_context_spawn(tmp_path):
    """The persistent pool spawns through ``get_context().Process``; the
    rules must resolve that spawn site's target as a worker root too."""
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import multiprocessing\n"
                "DEATHS = {}\n"
                "def _pool_worker(worker_id, tasks, channel):\n"
                "    DEATHS[worker_id] = 1\n"
                "def execute_pooled():\n"
                "    ctx = multiprocessing.get_context()\n"
                "    proc = ctx.Process(target=_pool_worker, args=(0, 1, 2))\n"
                "    proc.start()\n"
            )
        },
        only="SL011",
    )
    assert rule_ids(findings) == ["SL011"]
    assert "reachable from worker entry point" in findings[0].message


# ----------------------------------------------------------------------
# SL012 interprocedural-cell-purity


def test_sl012_catches_cross_module_clock_read(tmp_path):
    """The seeded cross-module violation: simulate_cell -> helper module
    -> wall clock, caught by exactly SL012 and attributed to the helper."""
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "from repro.sim.helper import stamp\n"
                "def simulate_cell(cell):\n"
                "    return stamp(cell)\n"
            ),
            "repro/sim/helper.py": (
                "import time\n"
                "def stamp(cell):\n"
                "    return (cell, time.time())\n"
            ),
        },
    )
    assert rule_ids(findings) == ["SL012"]
    assert len(findings) == 1
    assert findings[0].path.endswith(os.path.join("repro", "sim", "helper.py"))
    assert "reads the wall clock" in findings[0].message
    assert "reachable from simulate_cell" in findings[0].message


def test_sl012_pure_chain_is_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "from repro.sim.helper import shape\n"
                "def simulate_cell(cell):\n"
                "    return shape(cell)\n"
            ),
            "repro/sim/helper.py": (
                "def shape(cell):\n"
                "    return sorted(set(str(cell)))\n"
            ),
        },
        only="SL012",
    )
    assert findings == []


def test_sl012_unreachable_impurity_is_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "import time\n"
                "def profiler_only():\n"
                "    return time.time()\n"
                "def simulate_cell(cell):\n"
                "    return cell\n"
            )
        },
        only="SL012",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL013 dead-stat-detection

STATS_PRELUDE = (
    "class StatGroup:\n"
    "    def __init__(self, name):\n"
    "        self.name = name\n"
    "    def counter(self, name):\n"
    "        return self\n"
    "    def add(self, n=1):\n"
    "        pass\n"
)


def test_sl013_fires_on_created_never_incremented(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                STATS_PRELUDE + "class Sim:\n"
                "    def __init__(self):\n"
                "        self.stats = StatGroup('sim')\n"
                "        self.hits = self.stats.counter('hits')\n"
                "def main():\n"
                "    return Sim()\n"
            )
        },
        only="SL013",
    )
    assert any(
        "'hits'" in finding.message and "never incremented" in finding.message
        for finding in findings
    )


def test_sl013_fires_on_unregistered_group(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                STATS_PRELUDE + "class Sim:\n"
                "    def __init__(self):\n"
                "        self.stats = StatGroup('sim')\n"
                "        self.hits = self.stats.counter('hits')\n"
                "    def run(self):\n"
                "        self.hits.add()\n"
                "def main():\n"
                "    Sim().run()\n"
            )
        },
        only="SL013",
    )
    assert any(
        "never reach the exported metrics namespace" in finding.message
        for finding in findings
    )


def test_sl013_registered_and_incremented_is_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                STATS_PRELUDE + "class Registry:\n"
                "    def __init__(self):\n"
                "        self.groups = []\n"
                "class Sim:\n"
                "    def __init__(self):\n"
                "        self.stats = StatGroup('sim')\n"
                "        self.hits = self.stats.counter('hits')\n"
                "    def run(self):\n"
                "        self.hits.add()\n"
                "def main():\n"
                "    sim = Sim()\n"
                "    sim.run()\n"
                "    registry = Registry()\n"
                "    registry.register(sim.stats)\n"
            )
        },
        only="SL013",
    )
    assert findings == []


def test_sl013_never_instantiated_class_is_exempt(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                STATS_PRELUDE + "class UnusedModel:\n"
                "    def __init__(self):\n"
                "        self.stats = StatGroup('unused')\n"
                "        self.hits = self.stats.counter('hits')\n"
            )
        },
        only="SL013",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SL014 exception-context-completeness


def test_sl014_fires_on_contextless_raise_below_executor(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "class ReproError(Exception):\n"
                "    pass\n"
                "class BoomError(ReproError):\n"
                "    pass\n"
                "def check(cell):\n"
                "    if cell is None:\n"
                "        raise BoomError('no cell')\n"
                "def simulate_cell(cell):\n"
                "    check(cell)\n"
            )
        },
        only="SL014",
    )
    assert rule_ids(findings) == ["SL014"]
    assert "raise BoomError(...) without context=" in findings[0].message


def test_sl014_context_and_non_repro_errors_are_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "class ReproError(Exception):\n"
                "    pass\n"
                "class BoomError(ReproError):\n"
                "    pass\n"
                "def check(cell):\n"
                "    if cell is None:\n"
                "        raise BoomError('no cell', context={'cell': cell})\n"
                "    if cell == 'nan':\n"
                "        raise ValueError('builtins are SL009 business')\n"
                "def simulate_cell(cell):\n"
                "    check(cell)\n"
            )
        },
        only="SL014",
    )
    assert findings == []


def test_sl014_unreachable_raise_is_silent(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "class ReproError(Exception):\n"
                "    pass\n"
                "def offline_tool():\n"
                "    raise ReproError('not under the executor')\n"
                "def simulate_cell(cell):\n"
                "    return cell\n"
            )
        },
        only="SL014",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Call-graph engine


def test_method_calls_resolve_through_instance_types(tmp_path):
    analysis = analysis_for(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "class Device:\n"
                "    def service(self):\n"
                "        return 1\n"
                "class Controller:\n"
                "    def __init__(self):\n"
                "        self.device = Device()\n"
                "    def step(self):\n"
                "        return self.device.service()\n"
                "def main():\n"
                "    Controller().step()\n"
            )
        },
    )
    edges = analysis.index.edges["repro.sim.snippet:Controller.step"]
    assert any(callee == "repro.sim.snippet:Device.service" for callee, _ in edges)


def test_import_cycles_terminate_and_resolve(tmp_path):
    analysis = analysis_for(
        tmp_path,
        {
            "repro/sim/alpha.py": (
                "from repro.sim.beta import pong\n"
                "def ping(n):\n"
                "    return pong(n)\n"
            ),
            "repro/sim/beta.py": (
                "from repro.sim.alpha import ping\n"
                "def pong(n):\n"
                "    if n:\n"
                "        return ping(n - 1)\n"
                "    return 0\n"
            ),
        },
    )
    assert any(
        callee == "repro.sim.beta:pong"
        for callee, _ in analysis.index.edges["repro.sim.alpha:ping"]
    )
    assert any(
        callee == "repro.sim.alpha:ping"
        for callee, _ in analysis.index.edges["repro.sim.beta:pong"]
    )


def test_dynamic_dispatch_falls_back_to_name_matching(tmp_path):
    analysis = analysis_for(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "class Fast:\n"
                "    def simulate_tick(self):\n"
                "        return 1\n"
                "class Slow:\n"
                "    def simulate_tick(self):\n"
                "        return 2\n"
                "def drive(model):\n"
                "    return model.simulate_tick()\n"
            )
        },
    )
    callees = {
        callee for callee, _ in analysis.index.edges["repro.sim.snippet:drive"]
    }
    assert "repro.sim.snippet:Fast.simulate_tick" in callees
    assert "repro.sim.snippet:Slow.simulate_tick" in callees


def test_generic_method_names_do_not_fan_out(tmp_path):
    assert "items" in FALLBACK_EXCLUDED
    assert "__init__" in FALLBACK_EXCLUDED
    analysis = analysis_for(
        tmp_path,
        {
            "repro/sim/snippet.py": (
                "class Table:\n"
                "    def items(self):\n"
                "        return []\n"
                "def drive(mapping):\n"
                "    return list(mapping.items())\n"
            )
        },
    )
    assert analysis.index.edges["repro.sim.snippet:drive"] == []


# ----------------------------------------------------------------------
# Summary cache


def test_summary_cache_hits_on_same_content_and_misses_on_change(tmp_path):
    source = "def f():\n    return 1\n"
    module_path = tmp_path / "repro" / "sim" / "snippet.py"
    module_path.parent.mkdir(parents=True)
    module_path.write_text(source)
    module = parse_module(str(module_path))
    cache_path = tmp_path / "cache.json"

    cache = SummaryCache(cache_path)
    assert cache.get(module.path, module.source) is None
    cache.put(module.path, module.source, extract_summary(module))
    cache.save()
    assert cache_path.exists()

    warm = SummaryCache(cache_path)
    assert warm.get(module.path, module.source) is not None
    assert warm.get(module.path, module.source + "\n# changed\n") is None


def test_analysis_round_trips_through_the_cache(tmp_path):
    files = {
        "repro/exec/snippet.py": (
            "import time\n"
            "def simulate_cell(cell):\n"
            "    return time.time()\n"
        )
    }
    root = write_project(tmp_path, files)
    cache_path = tmp_path / "cache.json"
    rules_cold = build_whole_program_rules(cache_path)
    cold = lint_paths([root], rules=rules_cold)
    rules_warm = build_whole_program_rules(cache_path)
    warm = lint_paths([root], rules=rules_warm)
    assert [f.as_dict() for f in cold] == [f.as_dict() for f in warm]
    assert rule_ids(warm) == ["SL012"]


# ----------------------------------------------------------------------
# Baseline


def make_finding_via_rule(tmp_path):
    findings = wp_lint(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import time\n"
                "def simulate_cell(cell):\n"
                "    return time.time()\n"
            )
        },
        only="SL012",
    )
    assert findings
    return findings


def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    findings = make_finding_via_rule(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).dump(baseline_path)
    loaded = Baseline.load(baseline_path)
    assert len(loaded) == len(findings)
    kept, suppressed = loaded.filter(findings)
    assert kept == []
    assert suppressed == len(findings)


def test_baseline_fingerprint_is_line_independent(tmp_path):
    finding = make_finding_via_rule(tmp_path)[0]
    moved = dataclasses.replace(finding, line=finding.line + 7, col=finding.col + 3)
    assert finding_fingerprint(finding) == finding_fingerprint(moved)


def test_baseline_load_rejects_garbage(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    try:
        Baseline.load(bad)
    except BaselineError as exc:
        assert "baseline" in str(exc)
    else:
        raise AssertionError("BaselineError expected")


# ----------------------------------------------------------------------
# The gate: the shipped tree is clean under whole-program analysis,
# with an EMPTY baseline (no grandfathered findings).


def test_src_repro_is_whole_program_clean():
    findings = lint_paths([SRC_REPRO], rules=build_whole_program_rules())
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_no_committed_baseline_file():
    assert not os.path.exists(os.path.join(REPO_ROOT, "lint-baseline.json"))


def test_every_whole_program_rule_has_metadata():
    seen = set()
    for cls in WHOLE_PROGRAM_RULE_CLASSES:
        assert cls.rule_id.startswith("SL") and len(cls.rule_id) == 5
        assert cls.rule_id not in seen
        seen.add(cls.rule_id)
        assert cls.severity in ("error", "warning")
        assert cls.rationale and cls.fixit and cls.name
    assert seen == {"SL010", "SL011", "SL012", "SL013", "SL014"}


# ----------------------------------------------------------------------
# CLI surface


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def fixture_project(tmp_path):
    return write_project(
        tmp_path,
        {
            "repro/exec/snippet.py": (
                "import time\n"
                "def simulate_cell(cell):\n"
                "    return time.time()\n"
            )
        },
    )


def test_cli_whole_program_finds_and_exits_one(tmp_path):
    root = fixture_project(tmp_path)
    code, output = run_cli("lint", "--whole-program", root)
    assert code == 1
    assert "SL012" in output


def test_cli_bare_lint_defaults_to_whole_program():
    code, output = run_cli("lint")
    assert code == 0
    assert "no findings" in output


def test_cli_sarif_output_is_valid(tmp_path):
    root = fixture_project(tmp_path)
    code, output = run_cli("lint", "--whole-program", "--format", "sarif", root)
    assert code == 1
    payload = json.loads(output)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert any(r["ruleId"] == "SL012" for r in run["results"])
    descriptor_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"SL010", "SL011", "SL012", "SL013", "SL014"} <= descriptor_ids


def test_cli_baseline_workflow_and_exit_codes(tmp_path):
    root = fixture_project(tmp_path)
    baseline = tmp_path / "baseline.json"

    code, output = run_cli(
        "lint", "--whole-program", "--write-baseline", str(baseline), root
    )
    assert code == 0
    assert "wrote 1 baseline entry" in output

    code, output = run_cli(
        "lint", "--whole-program", "--baseline", str(baseline), root
    )
    assert code == 0
    assert "suppressed by baseline" in output

    code, output = run_cli(
        "lint", "--whole-program", "--baseline", str(tmp_path / "missing.json"), root
    )
    assert code == 2
    assert output.startswith("error:")

    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    code, output = run_cli(
        "lint", "--whole-program", "--baseline", str(garbage), root
    )
    assert code == 2
    assert output.startswith("error:")


def test_cli_list_rules_includes_whole_program_set():
    code, output = run_cli("lint", "--list-rules")
    assert code == 0
    for rule_id in ("SL010", "SL011", "SL012", "SL013", "SL014"):
        assert rule_id in output


def test_cli_summary_cache_persists_between_runs(tmp_path):
    root = fixture_project(tmp_path)
    cache = tmp_path / "summaries.json"
    code, _ = run_cli(
        "lint", "--whole-program", "--summary-cache", str(cache), root
    )
    assert code == 1
    assert cache.exists()
    code, output = run_cli(
        "lint", "--whole-program", "--summary-cache", str(cache), root
    )
    assert code == 1
    assert "SL012" in output
