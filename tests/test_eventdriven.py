"""Invariants of the event-driven multicore driver."""

from dataclasses import replace

import pytest

from repro.common.config import default_system_config
from repro.sim.system import SystemSimulator
from repro.workloads.base import MB, TraceBuilder
from repro.workloads.registry import make_trace


def _trace(name, seed, count=500, gap=1):
    builder = TraceBuilder(name, seed=seed)
    region = builder.region("data", 16 * 1024 * MB, thp_eligibility=0.5)
    for _ in range(count):
        builder.read(region.clustered(hot_chunks=256, tail=0.01), gap=gap)
    return builder.build()


def test_all_cores_complete_all_records(config):
    traces = [_trace("a", 1), _trace("b", 2), _trace("c", 3)]
    result = SystemSimulator(config, traces).run(warmup=0)
    assert [core.references for core in result.cores] == [500, 500, 500]


def test_no_requests_left_pending_after_run(config):
    traces = [_trace("a", 1), _trace("b", 2)]
    simulator = SystemSimulator(config, traces)
    simulator.run()  # run() drains leftover prefetches/writebacks
    assert simulator.controller.pending_requests() == 0


def test_asymmetric_trace_lengths(config):
    short = _trace("short", 1, count=120)
    long = _trace("long", 2, count=900)
    result = SystemSimulator(config, [short, long]).run(warmup=50)
    by_name = {core.workload_name: core for core in result.cores}
    assert by_name["short"].references == 70
    assert by_name["long"].references == 850


def test_event_driven_respects_max_records(config):
    traces = [_trace("a", 1), _trace("b", 2)]
    result = SystemSimulator(config, traces).run(max_records=200, warmup=40)
    assert all(core.references == 160 for core in result.cores)


def test_shared_bank_contention_slows_cores(config):
    """Two cores hammering the same physical pages must interleave at the
    banks: shared runtime strictly exceeds the alone runtime."""
    traces = [_trace("a", 7), _trace("b", 7)]  # same seed: same addresses
    alone = SystemSimulator(config, [_trace("a", 7)]).run().total_cycles
    shared = SystemSimulator(config, traces).run().total_cycles
    assert shared > alone


def test_multicore_with_imp_and_tempo(config):
    imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
    builder_traces = []
    for name, seed in (("a", 1), ("b", 2)):
        builder = TraceBuilder(name, seed=seed)
        region = builder.region("data", 16 * 1024 * MB, thp_eligibility=0.5)
        for _ in range(400):
            builder.read(region.clustered(hot_chunks=256, tail=0.0), gap=1, pattern="x")
        builder_traces.append(builder.build())
    simulator = SystemSimulator(imp_config, builder_traces)
    result = simulator.run()
    assert all(core.references > 0 for core in result.cores)


def test_multicore_bliss_tempo_subrows_combo(config):
    subrows = replace(config.dram.subrows, enabled=True, dedicated_prefetch_subrows=2)
    combo = config.copy_with(
        dram=replace(config.dram, subrows=subrows),
        scheduler=replace(config.scheduler, policy="bliss"),
    )
    traces = [_trace("a", 1), _trace("b", 2)]
    result = SystemSimulator(combo, traces).run()
    assert result.total_cycles > 0


def test_real_workload_mix_deterministic(config):
    traces = [
        make_trace("xsbench", length=400, seed=0),
        make_trace("bzip2_small", length=400, seed=1),
    ]
    first = SystemSimulator(config, traces, seed=3).run()
    second = SystemSimulator(config, traces, seed=3).run()
    assert [core.cycles for core in first.cores] == [
        core.cycles for core in second.cores
    ]


def test_grace_period_defers_competing_core(config):
    """With a huge grace period, the competing core gets measurably
    slower than with none -- the reservation is a real delay."""
    traces = [_trace("a", 7), _trace("b", 7)]
    no_grace = config.with_tempo(True, grace_period_cycles=0)
    big_grace = config.with_tempo(True, grace_period_cycles=400)
    cycles_none = SystemSimulator(no_grace, traces).run().total_cycles
    cycles_big = SystemSimulator(big_grace, traces).run().total_cycles
    assert cycles_big != cycles_none  # reservations change the schedule
