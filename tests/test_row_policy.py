"""Tests for row-buffer management policies."""

import pytest

from repro.common.config import RowPolicyConfig
from repro.common.errors import ConfigError
from repro.dram.row_policy import (
    MIN_WINDOW,
    AdaptiveRowPolicy,
    ClosedRowPolicy,
    OpenRowPolicy,
    make_row_policy,
)


def test_open_policy_never_closes():
    policy = OpenRowPolicy()
    assert policy.close_time(5, 1000) is None


def test_closed_policy_closes_immediately():
    policy = ClosedRowPolicy()
    assert policy.close_time(5, 1000) == 1000


def _adaptive(initial=200, maximum=2000):
    return AdaptiveRowPolicy(
        RowPolicyConfig(policy="adaptive", predictor_initial_window=initial,
                        predictor_max_window=maximum)
    )


def test_adaptive_initial_window():
    policy = _adaptive(initial=200)
    assert policy.close_time(5, 1000) == 1200


def test_adaptive_grows_after_premature_close():
    policy = _adaptive(initial=200)
    # Same row arrived after auto-close: a hit became a miss.
    policy.record_transition(prev_row=5, new_row=5, was_open=False)
    assert policy.close_time(5, 0) == 400


def test_adaptive_shrinks_after_conflict():
    policy = _adaptive(initial=200)
    policy.record_transition(prev_row=5, new_row=9, was_open=True)
    assert policy.close_time(5, 0) == 100


def test_adaptive_window_saturates():
    policy = _adaptive(initial=1500, maximum=2000)
    for _ in range(5):
        policy.record_transition(5, 5, was_open=False)
    assert policy.close_time(5, 0) == 2000
    for _ in range(20):
        policy.record_transition(5, 9, was_open=True)
    assert policy.close_time(5, 0) == MIN_WINDOW


def test_adaptive_correct_predictions_leave_window_alone():
    policy = _adaptive(initial=200)
    policy.record_transition(5, 5, was_open=True)   # hit while open: fine
    policy.record_transition(5, 9, was_open=False)  # closed before conflict: fine
    assert policy.close_time(5, 0) == 200


def test_adaptive_windows_are_per_row():
    policy = _adaptive(initial=200)
    policy.record_transition(5, 5, was_open=False)  # grow row 5 only
    assert policy.close_time(5, 0) == 400
    assert policy.close_time(6, 0) == 200


def test_adaptive_prediction_cache_evicts():
    config = RowPolicyConfig(policy="adaptive", predictor_sets=1, predictor_ways=2)
    policy = AdaptiveRowPolicy(config)
    policy.record_transition(1, 1, was_open=False)  # row 1 window=400
    policy.record_transition(2, 2, was_open=False)
    policy.record_transition(3, 3, was_open=False)  # evicts row 1
    assert policy.close_time(1, 0) == config.predictor_initial_window


def test_adaptive_ignores_none_prev():
    policy = _adaptive()
    policy.record_transition(None, 5, was_open=False)  # no crash


def test_make_row_policy_dispatch():
    assert isinstance(make_row_policy(RowPolicyConfig(policy="open")), OpenRowPolicy)
    assert isinstance(make_row_policy(RowPolicyConfig(policy="closed")), ClosedRowPolicy)
    assert isinstance(make_row_policy(RowPolicyConfig(policy="adaptive")), AdaptiveRowPolicy)


def test_adaptive_requires_config():
    with pytest.raises(ConfigError):
        AdaptiveRowPolicy(None)
