"""Tests for the single-core system simulator."""

from dataclasses import replace

import pytest

from repro.common.config import default_system_config
from repro.common.errors import ConfigError, SimulationError
from repro.sim.system import SystemSimulator
from repro.sim.trace import RegionSpec, Trace, TraceRecord
from repro.vm.address_space import REGION_SPACE_BASE
from repro.workloads.base import MB, TraceBuilder


def _sequential_trace(pages=100, line_stride=4096, name="seq"):
    builder = TraceBuilder(name, seed=1)
    region = builder.region("data", 64 * MB)
    for index in range(pages):
        builder.read(region.at(index * line_stride + 64), gap=2)
    return builder.build()


def _random_trace(count=800, footprint=8 * 1024 * MB, name="rand", seed=3):
    builder = TraceBuilder(name, seed=seed)
    region = builder.region("data", footprint, thp_eligibility=0.5)
    for _ in range(count):
        builder.read(region.clustered(hot_chunks=512, tail=0.01), gap=1)
    return builder.build()


def test_run_returns_result_with_core(config, small_trace):
    result = SystemSimulator(config, [small_trace]).run()
    assert result.core.references > 0
    assert result.core.cycles > 0
    assert result.energy_total > 0


def test_rejects_empty_traces(config):
    with pytest.raises(SimulationError):
        SystemSimulator(config, [])


def test_rejects_non_config(small_trace):
    with pytest.raises(ConfigError):
        SystemSimulator({"core": 1}, [small_trace])


def test_time_advances_monotonically(config, small_trace):
    simulator = SystemSimulator(config, [small_trace])
    core = simulator.cores[0]
    previous = 0
    for position in range(0, 200):
        simulator._process_record(core, core.trace.records[position])
        core.position += 1
        assert core.time >= previous
        previous = core.time


def test_max_records_limits_run(config, small_trace):
    result = SystemSimulator(config, [small_trace]).run(max_records=100, warmup=20)
    assert result.core.references == 80  # 100 processed - 20 warmup


def test_warmup_excluded_from_metrics(config, small_trace):
    full = SystemSimulator(config, [small_trace]).run(warmup=0)
    warmed = SystemSimulator(config, [small_trace]).run(warmup=300)
    assert warmed.core.references == full.core.references - 300
    assert warmed.core.cycles < full.core.cycles


def test_demand_faults_map_pages(config, small_trace):
    simulator = SystemSimulator(config, [small_trace])
    simulator.run()
    assert simulator.cores[0].address_space.stats.counter("minor_faults").value > 0


def test_sequential_trace_mostly_tlb_hits(config):
    trace = _sequential_trace(pages=2000, line_stride=64)  # 64 lines/page
    simulator = SystemSimulator(config.with_tempo(False), [trace])
    simulator.run()
    tlb = simulator.cores[0].tlb
    assert tlb.miss_rate() < 0.1


def test_random_trace_generates_dram_walks(config):
    trace = _random_trace()
    simulator = SystemSimulator(config.with_tempo(False), [trace])
    result = simulator.run()
    refs = result.core.dram_refs
    assert refs.walks_with_dram_leaf > 50
    assert refs.ptw_leaf > refs.ptw_upper


def test_baseline_replays_follow_ptw_to_dram(config):
    """The paper's 98% observation must emerge from the model."""
    result = SystemSimulator(config.with_tempo(False), [_random_trace()]).run()
    assert result.core.dram_refs.replay_follows_ptw_rate() > 0.9


def test_tempo_reduces_cycles_on_irregular_trace(config):
    trace = _random_trace()
    baseline = SystemSimulator(config.with_tempo(False), [trace]).run()
    tempo = SystemSimulator(config.with_tempo(True), [trace]).run()
    assert tempo.total_cycles < baseline.total_cycles


def test_tempo_replays_mostly_llc_hits(config):
    result = SystemSimulator(config.with_tempo(True), [_random_trace()]).run()
    service = result.core.replay_service
    assert service.total > 0
    assert service.fraction("llc") > 0.5


def test_row_only_tempo_yields_row_buffer_hits(config):
    config = config.with_tempo(True, llc_prefetch=False)
    result = SystemSimulator(config, [_random_trace()]).run()
    service = result.core.replay_service
    assert service.fraction("row_buffer") > 0.5
    assert service.llc < service.row_buffer


def test_determinism_same_seed(config):
    results = [
        SystemSimulator(config, [_random_trace()], seed=9).run().total_cycles
        for _ in range(2)
    ]
    assert results[0] == results[1]


def test_region_layout_mismatch_detected(config):
    records = [TraceRecord(REGION_SPACE_BASE + 100)]
    bad_region = RegionSpec("data", 64 * MB, base=0xDEAD0000)
    trace = Trace("bad", records, [bad_region])
    with pytest.raises(SimulationError):
        SystemSimulator(config, [trace])


def test_writebacks_reach_dram(config):
    builder = TraceBuilder("writer", seed=2)
    region = builder.region("data", 512 * MB)
    for index in range(4000):
        builder.write(region.at(index * 4096), gap=1)
    result = SystemSimulator(config.with_tempo(False), [builder.build()]).run()
    assert result.core.dram_refs.writeback > 0


def test_imp_enabled_runs_and_prefetches(config):
    builder = TraceBuilder("indirect", seed=4)
    region = builder.region("data", 8 * 1024 * MB)
    for _ in range(1500):
        builder.read(region.clustered(hot_chunks=256, tail=0.0), gap=1, pattern="x")
    trace = builder.build()
    imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
    simulator = SystemSimulator(imp_config, [trace])
    result = simulator.run()
    imp = simulator.cores[0].imp
    assert imp.stats.counter("prefetches_issued").value > 0


def test_superpage_fraction_reported(config):
    result = SystemSimulator(config, [_random_trace()]).run()
    assert 0.2 < result.superpage_fraction < 0.9  # eligibility 0.5


def test_4k_only_config_reports_zero_superpages(config):
    config = config.copy_with(vm=replace(config.vm, thp_enabled=False))
    result = SystemSimulator(config, [_random_trace()]).run()
    assert result.superpage_fraction == 0.0
