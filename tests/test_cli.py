"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list_shows_all_workloads():
    code, output = run_cli("list")
    assert code == 0
    for name in ("xsbench", "graph500", "illustris", "bzip2_small"):
        assert name in output


def test_run_prints_breakdown():
    code, output = run_cli("run", "mcf", "--length", "800")
    assert code == 0
    assert "DRAM-PTW runtime" in output
    assert "replay service" in output  # TEMPO on by default


def test_run_no_tempo_has_no_replay_service():
    code, output = run_cli("run", "mcf", "--length", "800", "--no-tempo")
    assert code == 0
    assert "replay service" not in output


def test_compare_reports_improvements():
    code, output = run_cli("compare", "xsbench", "--length", "1500")
    assert code == 0
    assert "performance:" in output
    assert "energy:" in output


def test_row_policy_and_scheduler_flags():
    code, output = run_cli(
        "run", "mcf", "--length", "600",
        "--row-policy", "closed", "--scheduler", "atlas",
    )
    assert code == 0


def test_trace_generate_and_replay(tmp_path):
    path = str(tmp_path / "t.trace")
    code, output = run_cli("trace", "lsh", "-o", path, "--length", "500")
    assert code == 0
    assert "wrote" in output
    code, output = run_cli("run", "--trace", path, "--length", "500")
    assert code == 0
    assert "lsh" in output


def test_run_stats_json_round_trip(tmp_path):
    path = str(tmp_path / "stats.json")
    code, output = run_cli("run", "mcf", "--length", "800", "--stats-json", path)
    assert code == 0
    assert "wrote" in output
    stats = json.load(open(path))
    assert any("tlb." in key for key in stats)
    assert any(key.startswith("controller.") for key in stats)
    assert any(key.startswith("manifest.") for key in stats)
    assert stats["manifest.workloads"] == "mcf"


def test_run_trace_events_chrome_format(tmp_path):
    path = str(tmp_path / "trace.json")
    code, output = run_cli("run", "mcf", "--length", "400", "--trace-events", path)
    assert code == 0
    events = json.load(open(path))
    assert isinstance(events, list) and events
    spans = [event for event in events if event.get("ph") == "X"]
    assert spans
    assert all("ts" in event and "dur" in event for event in spans)


def test_stats_command_prints_namespace(tmp_path):
    code, output = run_cli("stats", "mcf", "--length", "400")
    assert code == 0
    assert "controller." in output
    assert "manifest.config_sha256" in output
    code, filtered = run_cli("stats", "mcf", "--length", "400", "--filter", "core0.tlb")
    assert code == 0
    assert filtered.strip()
    assert all(
        line.startswith("core0.tlb") for line in filtered.strip().splitlines()
    )


def test_stats_command_csv_export(tmp_path):
    path = str(tmp_path / "stats.csv")
    code, output = run_cli("stats", "mcf", "--length", "400", "--csv", path)
    assert code == 0
    lines = open(path).read().splitlines()
    assert lines[0] == "metric,value"
    assert len(lines) > 10


def test_stats_filter_accepts_globs():
    code, output = run_cli(
        "stats", "mcf", "--length", "400", "--filter", "core0.tlb.*"
    )
    assert code == 0
    lines = output.strip().splitlines()
    assert lines
    assert all(line.startswith("core0.tlb.") for line in lines)
    # A glob can reach across prefixes, which a plain prefix cannot.
    code, output = run_cli(
        "stats", "mcf", "--length", "400", "--filter", "*.walker.walks"
    )
    assert code == 0
    assert any(line.startswith("core0.walker.walks") for line in output.splitlines())


def test_stats_filter_glob_without_match_is_empty():
    code, output = run_cli(
        "stats", "mcf", "--length", "400", "--filter", "no.such.unit.*"
    )
    assert code == 0
    assert output.strip() == ""


def test_timeline_command_renders_bars_and_attribution():
    code, output = run_cli("timeline", "xsbench", "--length", "800", "--width", "40")
    assert code == 0
    assert "per-unit utilization" in output
    assert "core0.walker" in output
    assert "bottleneck attribution" in output
    assert "unattributed cycles: 0" in output


def test_timeline_command_exports_json_and_csv(tmp_path):
    json_path = str(tmp_path / "timeline.json")
    csv_path = str(tmp_path / "timeline.csv")
    code, output = run_cli(
        "timeline", "xsbench", "--length", "800",
        "--interval", "512", "--json", json_path, "--csv", csv_path,
    )
    assert code == 0
    payload = json.load(open(json_path))
    assert payload["schema_version"] == 1
    assert payload["attribution"]["unattributed_cycles"] == 0
    assert {unit["name"] for unit in payload["units"]} >= {"core0.walker", "llc"}
    lines = open(csv_path).read().splitlines()
    assert lines[0] == "kind,name,interval_start,value"
    assert len(lines) > 10


def test_timeline_command_rejects_bad_interval():
    code, output = run_cli("timeline", "xsbench", "--length", "400", "--interval", "0")
    assert code == 2
    assert "error:" in output


def test_experiment_telemetry_flag_writes_jsonl(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    code, output = run_cli(
        "experiment", "fig01", "--length", "400", "--workloads", "xsbench",
        "--no-cache", "--telemetry", path,
    )
    assert code == 0
    events = [json.loads(line) for line in open(path)]
    kinds = [event["event"] for event in events]
    assert kinds[0] == "batch_start"
    assert "batch_finish" in kinds
    assert any(k in ("cell_done", "cache_hit") for k in kinds)
    assert all(event["schema"] == 1 for event in events)


def test_experiment_fixed_set_warns_on_workloads_filter():
    code, output = run_cli(
        "experiment", "fig17", "--length", "200", "--workloads", "xsbench"
    )
    assert code == 0
    assert "ignoring --workloads" in output


def test_experiment_driver_runs():
    code, output = run_cli(
        "experiment", "fig01", "--length", "800", "--workloads", "xsbench"
    )
    assert code == 0
    assert "fig01" in output
    assert "xsbench" in output


def test_experiment_unknown_figure():
    code, output = run_cli("experiment", "fig99")
    assert code == 2
    assert "unknown figure" in output


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
