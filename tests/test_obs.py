"""Tests for the observability layer (repro.obs)."""

import json

from repro.common.config import default_system_config
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    PhaseProfiler,
    RunManifest,
    write_stats_csv,
    write_stats_json,
)
from repro.obs.manifest import config_hash
from repro.obs.profiler import ProgressMeter
from repro.common.stats import StatGroup
from repro.sim.multicore import MulticoreSimulator
from repro.sim.runner import run_workload
from repro.sim.system import SystemSimulator
from repro.workloads.registry import make_trace


# ----------------------------------------------------------------------
# EventTracer
# ----------------------------------------------------------------------


def test_tracer_records_spans_and_instants():
    tracer = EventTracer()
    tracer.span("walk", 0, 100, 250, {"levels": 4})
    tracer.instant("marker", 1, 300)
    events = tracer.chrome_trace()
    assert len(events) == 2
    span, instant = events
    assert span["ph"] == "X" and span["ts"] == 100 and span["dur"] == 150
    assert span["tid"] == 0 and span["args"] == {"levels": 4}
    assert instant["ph"] == "i" and instant["ts"] == 300 and instant["tid"] == 1


def test_tracer_limit_counts_drops():
    tracer = EventTracer(limit=2)
    for i in range(5):
        tracer.span("s", 0, i, i + 1)
    assert len(tracer) == 2
    assert tracer.dropped == 3
    events = tracer.chrome_trace()
    assert events[-1]["name"] == "tracer_dropped_events"
    assert events[-1]["args"]["dropped"] == 3


def test_tracer_chrome_export_round_trips(tmp_path):
    tracer = EventTracer()
    tracer.span("dram", 2, 10, 60, {"kind": "pt"})
    path = str(tmp_path / "trace.json")
    written = tracer.write_chrome_trace(path)
    assert written == 1
    loaded = json.load(open(path))
    assert isinstance(loaded, list)
    assert loaded[0]["ts"] == 10 and loaded[0]["dur"] == 50


# ----------------------------------------------------------------------
# MetricsRegistry + exporters
# ----------------------------------------------------------------------


def test_registry_collects_with_prefixes():
    registry = MetricsRegistry()
    shared = StatGroup("controller")
    shared.counter("served").add(3)
    scoped = StatGroup("tlb")
    scoped.counter("hits").add(7)
    registry.register(shared)
    registry.register(scoped, "core0")
    flat = registry.collect()
    assert flat == {"controller.served": 3, "core0.tlb.hits": 7}


def test_stats_exporters_round_trip(tmp_path):
    stats = {"a.b": 1, "a.c": 2.5, "manifest.version": "1.0"}
    json_path = str(tmp_path / "s.json")
    csv_path = str(tmp_path / "s.csv")
    assert write_stats_json(stats, json_path) == 3
    assert json.load(open(json_path)) == stats
    assert write_stats_csv(stats, csv_path) == 3
    lines = open(csv_path).read().strip().splitlines()
    assert lines[0] == "metric,value"
    assert len(lines) == 4


# ----------------------------------------------------------------------
# RunManifest
# ----------------------------------------------------------------------


def test_manifest_identity_and_flat():
    config = default_system_config()
    trace = make_trace("bzip2_small", length=300, seed=3)
    manifest = RunManifest(config, seed=3, traces=[trace], warmup_records=100)
    assert manifest.config_sha256 == config_hash(config)
    assert manifest.traces[0]["name"] == trace.name
    assert manifest.traces[0]["records"] == len(trace.records)
    flat = manifest.flat()
    assert flat["manifest.seed"] == 3
    assert flat["manifest.workloads"] == trace.name
    assert flat["manifest.warmup_records"] == 100
    # The nested form must be JSON-serialisable (config snapshot included).
    json.loads(manifest.to_json())


def test_manifest_hash_tracks_config_changes():
    base = default_system_config()
    changed = base.with_tempo(False)
    assert config_hash(base) != config_hash(changed)
    assert config_hash(base) == config_hash(default_system_config())


# ----------------------------------------------------------------------
# PhaseProfiler / ProgressMeter
# ----------------------------------------------------------------------


def test_profiler_accumulates_phases():
    profiler = PhaseProfiler()
    with profiler.phase("a"):
        pass
    with profiler.phase("b"):
        pass
    summary = profiler.summary(records=1000)
    assert set(summary) >= {"wall_seconds", "wall_seconds.a", "wall_seconds.b"}
    assert summary["records"] == 1000
    assert summary["records_per_second"] >= 0.0


def test_progress_meter_rate_limits():
    calls = []
    meter = ProgressMeter(lambda done, total: calls.append((done, total)), 100, interval=40)
    for _ in range(100):
        meter.tick()
    meter.finish()
    assert calls[-1] == (100, 100)
    assert len(calls) <= 4  # 40, 80, finish (plus at most one boundary)


def test_progress_meter_defaults_to_stderr(capsys):
    meter = ProgressMeter(None, 50, interval=25)
    for _ in range(50):
        meter.tick()
    meter.finish()
    captured = capsys.readouterr()
    assert captured.out == ""  # stdout stays clean for results
    assert "progress: 50/50 records" in captured.err


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------


def test_run_harvests_per_core_stats_and_manifest():
    trace = make_trace("bzip2_small", length=600, seed=1)
    result = run_workload(trace, length=600, seed=1)
    stats = result.stats
    assert any(key.startswith("core0.tlb.") for key in stats)
    assert any(key.startswith("core0.mmu_cache.") for key in stats)
    assert any(key.startswith("core0.walker.") for key in stats)
    assert any(key.startswith("core0.l1.") for key in stats)
    assert any(key.startswith("controller.") for key in stats)
    assert any(key.startswith("energy.") for key in stats)
    assert any(key.startswith("manifest.") for key in stats)
    assert result.manifest is not None
    assert stats["manifest.config_sha256"] == result.manifest.config_sha256
    assert "wall_seconds" in result.manifest.timings
    assert result.manifest.timings["records"] == len(trace.records)


def test_run_with_tracer_emits_lifecycle_spans():
    tracer = EventTracer()
    trace = make_trace("bzip2_small", length=400, seed=2)
    run_workload(trace, length=400, seed=2, tracer=tracer)
    names = {event[0] for event in tracer.events}
    assert {"record", "tlb_lookup"} <= names
    assert "walk" in names  # bzip2_small misses the TLB at this length
    # Spans are well-formed: end >= begin for every complete span.
    assert all(e[3] is None or e[3] >= e[2] for e in tracer.events)


def test_tracer_does_not_change_timing():
    trace = make_trace("bzip2_small", length=500, seed=4)
    plain = run_workload(trace, length=500, seed=4)
    trace2 = make_trace("bzip2_small", length=500, seed=4)
    traced = run_workload(trace2, length=500, seed=4, tracer=EventTracer())
    assert plain.total_cycles == traced.total_cycles


def test_progress_callback_fires():
    calls = []
    trace = make_trace("bzip2_small", length=400, seed=5)
    simulator = SystemSimulator(
        default_system_config(),
        [trace],
        seed=5,
        progress=lambda done, total: calls.append((done, total)),
        progress_interval=100,
    )
    simulator.run()
    assert calls, "progress callback never fired"
    total = len(trace.records)
    assert calls[-1] == (total, total)


def test_multicore_timings_and_progress():
    traces = [
        make_trace("bzip2_small", length=250, seed=6),
        make_trace("gcc_small", length=250, seed=6),
    ]
    messages = []
    simulator = MulticoreSimulator(
        default_system_config(), traces, seed=6, progress=messages.append
    )
    result = simulator.run()
    assert "wall_seconds.shared" in result.timings
    assert any(key.startswith("wall_seconds.alone.") for key in result.timings)
    assert any("shared mix" in message for message in messages)
    # Per-core stats from the shared run are scoped per core.
    assert any(key.startswith("core1.tlb.") for key in result.shared.stats)
