"""Tests for the stride-prefetcher baseline."""

from repro.cache.stride import StridePrefetcher


def test_constant_stride_locks_and_prefetches():
    prefetcher = StridePrefetcher(confidence_threshold=2, degree=2)
    targets = []
    for i in range(6):
        targets = prefetcher.observe("a", 0x1000 + i * 256)
    assert targets == [0x1000 + 6 * 256, 0x1000 + 7 * 256]


def test_irregular_stream_never_prefetches():
    prefetcher = StridePrefetcher(confidence_threshold=2)
    addresses = [0x1000, 0x5000, 0x2000, 0x9000, 0x3000, 0x8000]
    for address in addresses:
        assert prefetcher.observe("a", address) == []


def test_streams_are_independent():
    prefetcher = StridePrefetcher(confidence_threshold=2)
    for i in range(6):
        prefetcher.observe("a", 0x1000 + i * 128)
        result_b = prefetcher.observe("b", 0x90000 - i * 64)
    assert result_b  # stream b locked its own (negative) stride
    assert result_b[0] < 0x90000 - 5 * 64


def test_zero_stride_never_prefetches():
    prefetcher = StridePrefetcher(confidence_threshold=2)
    for _ in range(6):
        targets = prefetcher.observe("a", 0x4000)
    assert targets == []


def test_none_stream_ignored():
    prefetcher = StridePrefetcher()
    assert prefetcher.observe(None, 0x1000) == []


def test_table_capacity_lru():
    prefetcher = StridePrefetcher(table_entries=2)
    prefetcher.observe("a", 0)
    prefetcher.observe("b", 0)
    prefetcher.observe("c", 0)  # evicts "a"
    assert prefetcher.stats.counter("evictions").value == 1


def test_small_strides_collapse_to_one_line():
    prefetcher = StridePrefetcher(confidence_threshold=2, degree=2)
    for i in range(6):
        targets = prefetcher.observe("a", 0x1000 + i * 8)
    # Two prefetch targets 8 bytes apart share a cache line.
    assert len(targets) == 1
