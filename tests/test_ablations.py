"""Smoke tests for the ablation drivers (tiny traces)."""

import pytest

from repro.analysis import ablations


def test_prefetch_destinations_structure():
    result = ablations.prefetch_destinations(workloads=("xsbench",), length=1500)
    row = result["rows"][0]
    assert row["workload"] == "xsbench"
    assert row["row_buffer_plus_llc"] >= row["row_buffer_only"] - 0.03


def test_txq_grouping_structure():
    result = ablations.txq_grouping(workloads=("mcf",), length=1200)
    row = result["rows"][0]
    assert "with_grouping" in row and "without_grouping" in row


def test_prefetch_row_latency_sweep():
    result = ablations.prefetch_row_latency(
        workload="graph500", length=1500, latencies=(60, 140)
    )
    rows = {row["prefetch_row_cycles"]: row for row in result["rows"]}
    assert rows[60]["llc_fraction"] > rows[140]["llc_fraction"]
    for row in rows.values():
        total = row["llc_fraction"] + row["row_buffer_fraction"]
        assert total <= 1.0 + 1e-9


def test_scheduler_sensitivity_covers_all():
    result = ablations.scheduler_sensitivity(
        workloads=("xsbench",), length=1200, schedulers=("fcfs", "atlas")
    )
    assert {row["scheduler"] for row in result["rows"]} == {"fcfs", "atlas"}


def test_extension_workloads_registered():
    from repro.workloads.registry import get_workload, workload_names

    assert "kvstore" in workload_names(include_extensions=True)
    assert "btree" in workload_names(include_extensions=True)
    assert "kvstore" not in workload_names()
    for name in ("kvstore", "btree"):
        trace = get_workload(name).build(800, seed=1)
        trace.validate()
        assert trace.footprint_bytes > 256 * 1024**3


def test_extension_workloads_benefit_from_tempo():
    from repro.sim.runner import run_baseline_and_tempo, speedup_fraction

    baseline, tempo = run_baseline_and_tempo("kvstore", length=2500, seed=0)
    assert speedup_fraction(baseline, tempo) > 0.03


def test_report_generation_small(tmp_path):
    from repro.analysis import experiments
    from repro.analysis.report import generate_report, write_report

    drivers = ((experiments.fig01_runtime_breakdown,
                {"workloads": ("xsbench",), "length": 800}),)
    report = generate_report(drivers=drivers)
    assert "# TEMPO reproduction report" in report
    assert "fig01" in report
    assert "xsbench" in report
    assert "|" in report  # markdown table present


def test_report_markdown_tables():
    from repro.analysis.report import _markdown_table

    table = _markdown_table([{"a": 1, "b": 0.25}])
    assert table.splitlines()[0] == "| a | b |"
    assert "0.250" in table
    assert _markdown_table([]) == "(no rows)\n"


def test_write_report_to_disk(tmp_path):
    from repro.analysis import experiments
    from repro.analysis.report import FIGURE_DRIVERS, generate_report

    # Shrink to a single fast driver via the drivers override.
    drivers = ((experiments.fig01_runtime_breakdown,
                {"workloads": ("mcf",), "length": 600}),)
    report = generate_report(drivers=drivers, progress=lambda line: None)
    assert "fig01" in report
    assert len(FIGURE_DRIVERS) == 11  # one per evaluation figure


def test_fig15_reports_mechanism_metric():
    from repro.analysis import experiments

    result = experiments.fig15_wait_cycles(
        workloads=("xsbench",), length=1500, waits=(0, 10)
    )
    for row in result["rows"]:
        assert 0.0 <= row["pt_row_hit_rate"] <= 1.0
