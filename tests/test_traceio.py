"""Tests for trace serialization."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.traceio import load_trace, save_trace
from repro.workloads.registry import make_trace


def test_roundtrip_preserves_everything(tmp_path):
    original = make_trace("xsbench", length=400, seed=5)
    path = tmp_path / "xsbench.trace"
    written = save_trace(original, path)
    assert written == len(original.records)
    loaded = load_trace(path)
    assert loaded.name == original.name
    assert loaded.footprint_bytes == original.footprint_bytes
    assert len(loaded.regions) == len(original.regions)
    for loaded_region, region in zip(loaded.regions, original.regions):
        assert (loaded_region.name, loaded_region.size, loaded_region.base) == (
            region.name, region.size, region.base,
        )
        assert loaded_region.thp_eligibility == region.thp_eligibility
    assert len(loaded.records) == len(original.records)
    for loaded_record, record in zip(loaded.records, original.records):
        assert loaded_record.vaddr == record.vaddr
        assert loaded_record.is_write == record.is_write
        assert loaded_record.gap == record.gap
        assert loaded_record.pattern == record.pattern


def test_loaded_trace_simulates_identically(tmp_path):
    from repro.sim.runner import run_workload

    original = make_trace("mcf", length=600, seed=2)
    path = tmp_path / "mcf.trace"
    save_trace(original, path)
    loaded = load_trace(path)
    cycles_original = run_workload(original).total_cycles
    cycles_loaded = run_workload(loaded).total_cycles
    assert cycles_original == cycles_loaded


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.trace"
    path.write_text("")
    with pytest.raises(SimulationError):
        load_trace(path)


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("not json\n")
    with pytest.raises(SimulationError):
        load_trace(path)


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "vers.trace"
    path.write_text('{"format_version": 99, "name": "x", "regions": []}\n')
    with pytest.raises(SimulationError):
        load_trace(path)


def test_corrupt_record_reports_line(tmp_path):
    original = make_trace("lsh", length=50, seed=1)
    path = tmp_path / "lsh.trace"
    save_trace(original, path)
    with open(path, "a") as stream:
        stream.write("garbage-line\n")
    with pytest.raises(SimulationError):
        load_trace(path)


def test_pattern_with_commas_is_impossible_but_empty_ok(tmp_path):
    original = make_trace("canneal", length=60, seed=1)
    path = tmp_path / "c.trace"
    save_trace(original, path)
    loaded = load_trace(path)
    assert all(record.pattern is None for record in loaded.records)
