"""Tests for the single-level set-associative cache."""

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError
from repro.cache.cache import Cache


def _cache(size=4096, assoc=2, replacement="lru"):
    return Cache(CacheConfig(size_bytes=size, assoc=assoc, replacement=replacement))


def test_miss_then_fill_then_hit():
    cache = _cache()
    assert not cache.lookup(0x1000)
    cache.fill(0x1000)
    assert cache.lookup(0x1040) is False  # different line
    assert cache.lookup(0x1000 + 63)  # same line


def test_fill_returns_victim_on_conflict():
    cache = _cache(size=128, assoc=2)  # 1 set, 2 ways
    cache.fill(0x0)
    cache.fill(0x40)
    victim = cache.fill(0x80)
    assert victim is not None
    assert victim.line_id == 0
    assert not victim.dirty


def test_dirty_victim_propagates_write_state():
    cache = _cache(size=128, assoc=2)
    cache.fill(0x0, is_write=True)
    cache.fill(0x40)
    victim = cache.fill(0x80)
    assert victim.dirty
    assert victim.paddr == 0x0


def test_write_hit_marks_dirty():
    cache = _cache(size=128, assoc=2)
    cache.fill(0x0)
    cache.lookup(0x0, is_write=True)
    cache.fill(0x40)
    victim = cache.fill(0x80)
    assert victim.dirty


def test_lru_order_updated_by_hits():
    cache = _cache(size=128, assoc=2)
    cache.fill(0x0)
    cache.fill(0x40)
    cache.lookup(0x0)  # refresh line 0 -> line 0x40 is LRU
    victim = cache.fill(0x80)
    assert victim.paddr == 0x40


def test_refill_existing_line_is_not_eviction():
    cache = _cache(size=128, assoc=2)
    cache.fill(0x0)
    assert cache.fill(0x0) is None
    assert cache.stats.counter("evictions").value == 0


def test_refill_preserves_dirtiness():
    cache = _cache(size=128, assoc=2)
    cache.fill(0x0, is_write=True)
    cache.fill(0x0)  # clean refill must not launder the dirty bit
    cache.fill(0x40)
    victim = cache.fill(0x80)
    assert victim.dirty


def test_invalidate():
    cache = _cache()
    cache.fill(0x1000, is_write=True)
    victim = cache.invalidate(0x1000)
    assert victim.dirty
    assert not cache.lookup(0x1000)
    assert cache.invalidate(0x1000) is None


def test_flush_returns_dirty_lines_only():
    cache = _cache()
    cache.fill(0x1000, is_write=True)
    cache.fill(0x2000)
    dirty = cache.flush()
    assert [line.paddr for line in dirty] == [0x1000]
    assert cache.occupancy == 0


def test_occupancy_bounded():
    cache = _cache(size=1024, assoc=4)
    for i in range(200):
        cache.fill(i * 64)
    assert cache.occupancy <= 16


def test_random_replacement_is_deterministic():
    a = Cache(CacheConfig(size_bytes=128, assoc=2, replacement="random"), "r1")
    b = Cache(CacheConfig(size_bytes=128, assoc=2, replacement="random"), "r1")
    victims_a = []
    victims_b = []
    for i in range(10):
        victims_a.append(a.fill(i * 64))
        victims_b.append(b.fill(i * 64))
    assert [v.line_id if v else None for v in victims_a] == [
        v.line_id if v else None for v in victims_b
    ]


def test_contains_does_not_touch_lru():
    cache = _cache(size=128, assoc=2)
    cache.fill(0x0)
    cache.fill(0x40)
    cache.contains(0x0)  # must NOT refresh
    victim = cache.fill(0x80)
    assert victim.paddr == 0x0


def test_prefetch_fill_counted_separately():
    cache = _cache()
    cache.fill(0x1000)
    cache.fill(0x2000, is_prefetch=True)
    assert cache.stats.counter("fills").value == 1
    assert cache.stats.counter("prefetch_fills").value == 1


def test_hit_rate():
    cache = _cache()
    cache.fill(0x1000)
    cache.lookup(0x1000)
    cache.lookup(0x9000)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_rejects_non_cacheconfig():
    with pytest.raises(ConfigError):
        Cache({"size": 1024})
