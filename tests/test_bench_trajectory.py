"""The bench artifact's cross-PR trajectory: each refresh re-embeds the
previous file's history plus the previous run itself, so the committed
``BENCH_perf.json`` accumulates a comparable perf record."""

import json
import os

from tools.bench import TRAJECTORY_LIMIT, _trajectory_entry, load_trajectory


def payload(version, trajectory=()):
    return {
        "schema": 2,
        "package_version": version,
        "generated_utc": "2026-01-01 00:00:00",
        "length": 800,
        "cpu_count": 2,
        "workloads": {
            "gups": {"records": 800, "seconds": 0.1, "records_per_sec": 8000},
            "stream": {"records": 800, "seconds": 0.05, "records_per_sec": 16000},
        },
        "figures": {
            "fig01": {"warm_cache_speedup": 10.0},
        },
        "trajectory": list(trajectory),
    }


def test_missing_file_starts_empty_history(tmp_path):
    assert load_trajectory(str(tmp_path / "absent.json")) == []


def test_corrupt_file_starts_empty_history(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert load_trajectory(str(path)) == []


def test_previous_run_is_appended_to_its_own_history(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    older = _trajectory_entry(payload("0.9.0"))
    path.write_text(json.dumps(payload("1.0.0", trajectory=[older])))

    trajectory = load_trajectory(str(path))
    assert [entry["package_version"] for entry in trajectory] == ["0.9.0", "1.0.0"]
    newest = trajectory[-1]
    assert newest["min_records_per_sec"] == 8000
    assert newest["max_records_per_sec"] == 16000
    assert newest["warm_cache_speedups"] == {"fig01": 10.0}
    assert newest["length"] == 800


def test_history_is_capped(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    old = [_trajectory_entry(payload("0.%d" % i)) for i in range(TRAJECTORY_LIMIT + 5)]
    path.write_text(json.dumps(payload("1.0.0", trajectory=old)))

    trajectory = load_trajectory(str(path))
    assert len(trajectory) == TRAJECTORY_LIMIT
    assert trajectory[-1]["package_version"] == "1.0.0"  # newest survives the cap


def test_schema2_history_compacts_without_batch_fields():
    """Pre-batch-kernel artifacts (schema 2) still compact cleanly --
    they just have no batch_speedup bounds."""
    entry = _trajectory_entry(payload("0.9.0"))
    assert "min_batch_speedup" not in entry
    assert "max_batch_speedup" not in entry


def test_schema3_history_compacts_batch_speedups():
    data = payload("1.1.0")
    data["schema"] = 3
    for name, ratio in (("gups", 0.9), ("stream", 1.2)):
        data["workloads"][name]["batch_speedup"] = ratio
    entry = _trajectory_entry(data)
    assert entry["min_batch_speedup"] == 0.9
    assert entry["max_batch_speedup"] == 1.2


def test_pre_pool_history_compacts_without_pool_speedups():
    """Schema <= 3 figure rows recorded ``parallel_speedup`` from the
    retired per-cell-spawn executor; compaction must not invent a pool
    number for them."""
    data = payload("1.1.0")
    data["figures"]["fig01"]["parallel_speedup"] = 0.8
    entry = _trajectory_entry(data)
    assert "pool_speedups" not in entry
    assert entry["warm_cache_speedups"] == {"fig01": 10.0}


def test_schema4_history_compacts_pool_speedups():
    data = payload("1.2.0")
    data["schema"] = 4
    data["figures"]["fig01"]["pool_speedup"] = 1.7
    entry = _trajectory_entry(data)
    assert entry["pool_speedups"] == {"fig01": 1.7}


def test_committed_artifact_has_a_trajectory():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_perf.json")) as stream:
        committed = json.load(stream)
    assert committed["schema"] == 4
    for row in committed["figures"].values():
        assert row["pool_speedup"] is not None
    assert isinstance(committed["trajectory"], list)
    assert committed["trajectory"], "committed BENCH_perf.json has an empty trajectory"
    for name, row in committed["workloads"].items():
        assert set(row["kernels"]) == {"scalar", "batch"}, name
        assert row["batch_speedup"] is not None, name
