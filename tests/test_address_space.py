"""Tests for the demand-paged address space."""

import pytest

from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.errors import MappingError, TranslationFault
from repro.vm.address_space import REGION_SPACE_BASE, AddressSpace
from repro.vm.superpage import BasePagePolicy, ThpPolicy

MB = 1024 * 1024


@pytest.fixture
def space(allocator):
    return AddressSpace(allocator, ThpPolicy(allocator))


def test_regions_start_at_region_space_base(space):
    region = space.allocate_region(64 * MB, "first")
    assert region.base == REGION_SPACE_BASE


def test_regions_are_gigabyte_aligned_and_disjoint(space):
    sizes = [64 * MB, 3 * 1024 * MB, 5 * MB, 1024 * MB]
    regions = [space.allocate_region(size, "r%d" % i) for i, size in enumerate(sizes)]
    for region in regions:
        assert region.base % PAGE_SIZE_1G == 0
    for earlier, later in zip(regions, regions[1:]):
        assert later.base >= earlier.end + PAGE_SIZE_1G  # guard gap


def test_region_of_lookup(space):
    first = space.allocate_region(64 * MB, "a")
    second = space.allocate_region(64 * MB, "b")
    assert space.region_of(first.base + 100) is first
    assert space.region_of(second.end - 1) is second
    assert space.region_of(first.end + 5) is None
    assert space.region_of(0) is None


def test_rejects_empty_region(space):
    with pytest.raises(MappingError):
        space.allocate_region(0, "empty")


def test_ensure_mapped_faults_once(space):
    region = space.allocate_region(64 * MB, "data")
    frame, size, faulted = space.ensure_mapped(region.base + 12345)
    assert faulted
    frame2, size2, faulted2 = space.ensure_mapped(region.base + 12345)
    assert (frame, size) == (frame2, size2)
    assert not faulted2
    assert space.stats.counter("minor_faults").value == 1


def test_fault_outside_regions_raises(space):
    space.allocate_region(64 * MB, "data")
    with pytest.raises(TranslationFault):
        space.handle_fault(0x1000)


def test_thp_backs_interior_with_2m(space):
    region = space.allocate_region(64 * MB, "data")
    _, size, _ = space.ensure_mapped(region.base + 10 * PAGE_SIZE_2M + 17)
    assert size == PAGE_SIZE_2M


def test_base_policy_space_maps_4k(allocator):
    space = AddressSpace(allocator, BasePagePolicy(allocator))
    region = space.allocate_region(64 * MB, "data")
    _, size, _ = space.ensure_mapped(region.base + 12345)
    assert size == PAGE_SIZE_4K
    assert space.superpage_fraction() == 0.0


def test_superpage_fraction_tracks_policy(space):
    region = space.allocate_region(64 * MB, "data")
    space.ensure_mapped(region.base + PAGE_SIZE_2M + 7)
    assert space.superpage_fraction() == 1.0


def test_mapped_bytes_delegates(space):
    region = space.allocate_region(64 * MB, "data")
    space.ensure_mapped(region.base)
    assert space.mapped_bytes() == PAGE_SIZE_2M


def test_two_spaces_share_allocator_without_frame_overlap(allocator):
    space_a = AddressSpace(allocator, BasePagePolicy(allocator))
    space_b = AddressSpace(allocator, BasePagePolicy(allocator))
    region_a = space_a.allocate_region(64 * MB, "a")
    region_b = space_b.allocate_region(64 * MB, "b")
    frames_a = {space_a.ensure_mapped(region_a.base + i * 4096)[0] for i in range(50)}
    frames_b = {space_b.ensure_mapped(region_b.base + i * 4096)[0] for i in range(50)}
    assert not frames_a & frames_b
