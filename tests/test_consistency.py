"""Cross-cutting consistency checks: public API surface, configuration
coherence, and documentation-code agreement."""

import pytest


def test_public_api_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_subpackage_exports_resolve():
    import repro.analysis
    import repro.cache
    import repro.common
    import repro.dram
    import repro.mmu
    import repro.sched
    import repro.sim
    import repro.vm
    import repro.workloads

    for module in (
        repro.common, repro.vm, repro.mmu, repro.cache, repro.dram,
        repro.sched, repro.sim, repro.workloads, repro.analysis,
    ):
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (module.__name__, name)


def test_version_matches_pyproject():
    import repro

    with open("pyproject.toml") as stream:
        content = stream.read()
    assert 'version = "%s"' % repro.__version__ in content


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # executes the CLI on import, by design
        module = importlib.import_module(info.name)
        assert module.__doc__, "%s lacks a module docstring" % info.name


def test_default_slack_window_exceeds_prefetch_path():
    """The timing contract from docs/timing_model.md: with the default
    constants, an unloaded LLC prefetch lands inside the slack window."""
    from repro.common.config import default_system_config

    config = default_system_config()
    prefetch_ready = (
        config.tempo.wait_cycles
        + config.tempo.prefetch_row_cycles
        + config.tempo.prefetch_llc_extra_cycles
    )
    slack = (
        config.dram.controller_overhead_cycles
        + config.core.tlb_fill_latency
        + 1  # replay TLB probe
        + config.core.llc_latency
    )
    assert prefetch_ready < slack


def test_figure_driver_names_cover_cli():
    from repro.analysis.report import FIGURE_DRIVERS
    from repro.cli import build_parser

    # The report runs 11 figures; the CLI experiment dispatcher exposes
    # the same set by name.
    import repro.cli as cli
    import io

    out = io.StringIO()

    class _Args:
        figure = "not-a-figure"
        length = 100
        workloads = None

    assert cli._cmd_experiment(_Args(), out) == 2
    listed = out.getvalue().split("choose from:")[1]
    for name in ("fig01", "fig04", "fig10", "fig11_left", "fig11_right",
                 "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"):
        assert name in listed


def test_expectation_claims_are_substantive():
    """Every expectation entry carries a real claim sentence, and every
    entry beyond the claim is machine-checkable (numbers/bools)."""
    from repro.analysis.expectations import PAPER_EXPECTATIONS

    for figure, entry in PAPER_EXPECTATIONS.items():
        assert len(entry["claim"]) > 30, figure
        for key, value in entry.items():
            if key == "claim":
                continue
            assert isinstance(value, (int, float, bool, tuple)), (figure, key)


def test_workload_registry_is_disjoint():
    from repro.workloads.registry import (
        BIGDATA_WORKLOADS,
        EXTENSION_WORKLOADS,
        SMALL_WORKLOADS,
    )

    names = [w.name for w in BIGDATA_WORKLOADS + SMALL_WORKLOADS + EXTENSION_WORKLOADS]
    assert len(names) == len(set(names))


def test_bigdata_flag_consistency():
    from repro.workloads.registry import BIGDATA_WORKLOADS, SMALL_WORKLOADS

    assert all(w.bigdata for w in BIGDATA_WORKLOADS)
    assert not any(w.bigdata for w in SMALL_WORKLOADS)


def test_cli_report_command_wiring(tmp_path, monkeypatch):
    """`repro report` writes a file using the report module."""
    import repro.cli as cli
    from repro.analysis import experiments
    from repro.analysis import report as report_module
    import io

    monkeypatch.setattr(
        report_module,
        "FIGURE_DRIVERS",
        ((experiments.fig01_runtime_breakdown, {"workloads": ("mcf",), "length": 400}),),
    )
    monkeypatch.setattr(report_module, "ABLATION_DRIVERS", ())
    out = io.StringIO()
    path = str(tmp_path / "report.md")
    code = cli.main(["report", "-o", path], out=out)
    assert code == 0
    with open(path) as stream:
        content = stream.read()
    assert "fig01" in content and "mcf" in content
