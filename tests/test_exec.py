"""Executor, cache, and fast-path regression tests.

The contract under test: *how* a cell is executed -- serially, through a
process pool, from the disk cache, or on the simulator's TLB-hit fast
path -- must never change its result.  Every comparison here is exact
(``==`` on ints and floats), except that ``manifest.timing.*`` stats are
excluded: those record host wall-clock, the one intentionally
non-deterministic namespace.
"""

import json
import os

import pytest

from repro.analysis import experiments
from repro.common.config import default_system_config
from repro.common.errors import SimulationError
from repro.exec import (
    ExperimentExecutor,
    PAYLOAD_SCHEMA,
    ResultCache,
    SimCell,
    payload_to_result,
    result_to_payload,
    simulate_cell,
)
from repro.obs import EventTracer
from repro.sim.system import SystemSimulator
from repro.workloads.registry import make_trace

LENGTH = 900
WORKLOADS = ("xsbench", "mcf")


def _comparable_stats(result):
    """All stats except the wall-clock ``manifest.timing.*`` keys."""
    return {
        key: value
        for key, value in result.stats.items()
        if not key.startswith("manifest.timing")
    }


def _slot_dict(obj):
    return {name: getattr(obj, name) for name in type(obj).__slots__}


def _assert_identical(expected, actual):
    """Bit-exact equality on everything the figure drivers consume."""
    assert actual.total_cycles == expected.total_cycles
    assert actual.energy_total == expected.energy_total
    assert actual.superpage_fraction == expected.superpage_fraction
    assert len(actual.cores) == len(expected.cores)
    for mine, theirs in zip(expected.cores, actual.cores):
        assert theirs.workload_name == mine.workload_name
        assert theirs.references == mine.references
        assert _slot_dict(theirs.runtime) == _slot_dict(mine.runtime)
        assert _slot_dict(theirs.dram_refs) == _slot_dict(mine.dram_refs)
        assert _slot_dict(theirs.replay_service) == _slot_dict(mine.replay_service)
    assert _comparable_stats(actual) == _comparable_stats(expected)


def _pair_cells():
    config = default_system_config()
    return [
        SimCell("xsbench", config.with_tempo(False), LENGTH),
        SimCell("xsbench", config.with_tempo(True), LENGTH),
    ]


# ----------------------------------------------------------------------
# Driver-level bit-identity: serial uncached vs parallel vs warm cache
# ----------------------------------------------------------------------


def _driver_three_ways(driver, cache_dir):
    kwargs = dict(workloads=WORKLOADS, length=LENGTH, seed=0)
    serial = driver(executor=ExperimentExecutor(), **kwargs)
    cache = ResultCache(str(cache_dir))
    parallel = driver(executor=ExperimentExecutor(jobs=2, cache=cache), **kwargs)
    warm_executor = ExperimentExecutor(cache=cache)
    warm = driver(executor=warm_executor, **kwargs)
    return serial, parallel, warm, warm_executor


def test_fig01_parallel_and_cached_match_serial(tmp_path):
    serial, parallel, warm, warm_executor = _driver_three_ways(
        experiments.fig01_runtime_breakdown, tmp_path
    )
    assert parallel["rows"] == serial["rows"]
    assert warm["rows"] == serial["rows"]
    # The warm run resolved every cell from disk: zero new simulations.
    assert warm_executor.counters["simulated"] == 0
    assert warm_executor.counters["cache_hits"] == len(WORKLOADS)


def test_fig10_parallel_and_cached_match_serial(tmp_path):
    serial, parallel, warm, warm_executor = _driver_three_ways(
        experiments.fig10_performance_energy, tmp_path
    )
    assert parallel["rows"] == serial["rows"]
    assert warm["rows"] == serial["rows"]
    assert warm_executor.counters["simulated"] == 0


def test_cell_results_bit_identical_across_paths(tmp_path):
    """Full stats comparison, not just the driver's row projection."""
    serial = ExperimentExecutor().run_cells(_pair_cells())
    cache = ResultCache(str(tmp_path))
    pooled = ExperimentExecutor(jobs=2, cache=cache).run_cells(_pair_cells())
    warm = ExperimentExecutor(cache=cache).run_cells(_pair_cells())
    for expected, a, b in zip(serial, pooled, warm):
        _assert_identical(expected, a)
        _assert_identical(expected, b)


# ----------------------------------------------------------------------
# Sweep telemetry
# ----------------------------------------------------------------------


def test_telemetry_log_records_batch_and_cell_lifecycle(tmp_path):
    from repro.exec import TelemetryLog

    path = str(tmp_path / "telemetry.jsonl")
    log = TelemetryLog(path)
    executor = ExperimentExecutor(telemetry=log)
    cells = _pair_cells()
    executor.run_cells(cells)
    executor.run_cells(cells)  # second batch: served from the memo
    log.close()

    events = [json.loads(line) for line in open(path)]
    assert log.events_written == len(events)
    kinds = [event["event"] for event in events]
    assert kinds.count("batch_start") == 2
    assert kinds.count("batch_finish") == 2
    assert kinds.count("cell_done") == len(cells)
    done = [event for event in events if event["event"] == "cell_done"]
    assert all(event.get("duration_seconds", 0) >= 0 for event in done)
    memo_hits = [
        event for event in events
        if event["event"] == "cache_hit" and event["source"] == "memo"
    ]
    assert len(memo_hits) == len(cells)
    assert all(event["schema"] == 1 for event in events)


def test_telemetry_disk_cache_hits_and_provenance(tmp_path):
    from repro.exec import TelemetryLog
    from repro.obs.manifest import executor_provenance

    cache = ResultCache(str(tmp_path / "cache"))
    ExperimentExecutor(cache=cache).run_cells(_pair_cells())

    path = str(tmp_path / "telemetry.jsonl")
    log = TelemetryLog(path)
    warm = ExperimentExecutor(cache=cache, telemetry=log)
    warm.run_cells(_pair_cells())
    events = [json.loads(line) for line in open(path)]
    disk_hits = [
        event for event in events
        if event["event"] == "cache_hit" and event["source"] == "disk"
    ]
    assert len(disk_hits) == len(_pair_cells())
    rows = dict(executor_provenance(warm))
    assert "telemetry" in rows
    assert path in rows["telemetry"]
    log.close()


def test_telemetry_does_not_change_results(tmp_path):
    from repro.exec import TelemetryLog

    plain = ExperimentExecutor().run_cells(_pair_cells())
    log = TelemetryLog(str(tmp_path / "telemetry.jsonl"))
    logged = ExperimentExecutor(telemetry=log).run_cells(_pair_cells())
    for expected, actual in zip(plain, logged):
        _assert_identical(expected, actual)


# ----------------------------------------------------------------------
# Cache addressing and invalidation
# ----------------------------------------------------------------------


def test_key_changes_with_config_and_version(monkeypatch):
    config = default_system_config()
    cell = SimCell("xsbench", config, LENGTH)
    assert cell.key() == SimCell("xsbench", config, LENGTH).key()
    assert cell.key() != SimCell("xsbench", config.with_tempo(False), LENGTH).key()
    assert cell.key() != SimCell("xsbench", config, LENGTH, seed=1).key()
    assert cell.key() != SimCell("mcf", config, LENGTH).key()
    monkeypatch.setattr("repro.__version__", "0.0.0+stale")
    assert SimCell("xsbench", config, LENGTH).key() != cell.key()


def test_stale_version_entry_not_reused(tmp_path, monkeypatch):
    """A cache written by another package version is never addressed."""
    cache = ResultCache(str(tmp_path))
    cell = SimCell("xsbench", default_system_config(), LENGTH)
    filled = ExperimentExecutor(cache=cache)
    filled.run_cell(cell)
    assert filled.counters["simulated"] == 1

    monkeypatch.setattr("repro.__version__", "0.0.0+stale")
    fresh = ExperimentExecutor(cache=cache)
    fresh.run_cell(SimCell("xsbench", default_system_config(), LENGTH))
    assert fresh.counters["cache_hits"] == 0
    assert fresh.counters["simulated"] == 1


def test_stale_schema_entry_not_reused(tmp_path):
    """An on-disk payload with the wrong schema is a miss, not a crash."""
    cache = ResultCache(str(tmp_path))
    cell = SimCell("xsbench", default_system_config(), LENGTH)
    expected = ExperimentExecutor(cache=cache).run_cell(cell)

    path = cache._result_path(cell.key())
    with open(path) as stream:
        payload = json.load(stream)
    payload["schema"] = PAYLOAD_SCHEMA + 1
    with open(path, "w") as stream:
        json.dump(payload, stream)

    fresh = ExperimentExecutor(cache=cache)
    result = fresh.run_cell(SimCell("xsbench", default_system_config(), LENGTH))
    assert fresh.counters["simulated"] == 1
    _assert_identical(expected, result)


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cell = SimCell("xsbench", default_system_config(), LENGTH)
    path = cache._result_path(cell.key())
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as stream:
        stream.write("{ torn write")
    assert cache.get(cell.key()) is None


def test_executor_memoizes_and_dedupes(tmp_path):
    executor = ExperimentExecutor(cache=ResultCache(str(tmp_path)))
    cell = SimCell("xsbench", default_system_config(), LENGTH)
    executor.run_cells([cell, SimCell("xsbench", default_system_config(), LENGTH)])
    assert executor.counters["simulated"] == 1
    assert executor.counters["deduped"] == 1
    executor.run_cell(cell)
    assert executor.counters["memo_hits"] == 1
    assert executor.counters["simulated"] == 1


def test_trace_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path))
    trace = make_trace("xsbench", length=LENGTH, seed=0)
    cache.put_trace(trace, LENGTH, 0)
    loaded = cache.get_trace("xsbench", LENGTH, 0)
    assert loaded is not None
    assert len(loaded) == len(trace)
    assert [
        (a.vaddr, a.is_write, a.gap) for a in loaded
    ] == [(b.vaddr, b.is_write, b.gap) for b in trace]


# ----------------------------------------------------------------------
# Payload serialization
# ----------------------------------------------------------------------


def test_serialize_round_trip():
    payload = simulate_cell(SimCell("xsbench", default_system_config(), LENGTH))
    rebuilt = payload_to_result(payload)
    # Through JSON and back, the projection is unchanged.
    assert result_to_payload(rebuilt) == json.loads(json.dumps(payload))


def test_payload_schema_mismatch_raises():
    with pytest.raises(SimulationError):
        payload_to_result({"schema": PAYLOAD_SCHEMA + 1, "cores": []})


# ----------------------------------------------------------------------
# Hot-loop fast path
# ----------------------------------------------------------------------


def test_system_fast_path_matches_event_engine():
    """A tracer forces every record through the generator-based event
    engine; without one, TLB hits take the inlined fast path.  Both must
    produce the same machine state."""
    config = default_system_config()
    for name in ("xsbench", "bzip2_small"):
        trace = make_trace(name, length=1200, seed=0)
        fast = SystemSimulator(config, [trace], seed=0).run()
        traced = SystemSimulator(
            config, [trace], seed=0, tracer=EventTracer(limit=16)
        ).run()
        _assert_identical(fast, traced)
