"""Tests for multiprogrammed simulation."""

from dataclasses import replace

import pytest

from repro.common.config import default_system_config
from repro.sim.multicore import MulticoreSimulator
from repro.sim.system import SystemSimulator
from repro.workloads.base import MB, TraceBuilder


def _intense_trace(name, seed):
    builder = TraceBuilder(name, seed=seed)
    region = builder.region("data", 8 * 1024 * MB, thp_eligibility=0.5)
    for _ in range(600):
        builder.read(region.clustered(hot_chunks=512, tail=0.01), gap=1)
    return builder.build()


def _light_trace(name, seed):
    builder = TraceBuilder(name, seed=seed)
    region = builder.region("data", 8 * MB)
    for _ in range(600):
        builder.read(region.zipf(skew=0.9), gap=20)
    return builder.build()


@pytest.fixture
def traces():
    return [_intense_trace("heavy", 1), _light_trace("light", 2)]


def test_shared_run_has_one_result_per_core(config, traces):
    result = SystemSimulator(config, traces).run()
    assert len(result.cores) == 2
    assert {core.workload_name for core in result.cores} == {"heavy", "light"}


def test_cores_have_private_translation_state(config, traces):
    simulator = SystemSimulator(config, traces)
    simulator.run()
    first, second = simulator.cores
    assert first.address_space is not second.address_space
    assert first.tlb is not second.tlb
    assert first.address_space.page_table.cr3 != second.address_space.page_table.cr3


def test_sharing_slows_down_vs_alone(config, traces):
    multicore = MulticoreSimulator(config, traces)
    result = multicore.run()
    assert result.max_slowdown >= 1.0
    assert 0 < result.weighted_speedup <= len(traces) + 0.01


def test_tempo_improves_weighted_speedup(config, traces):
    baseline = MulticoreSimulator(config.with_tempo(False), traces).run()
    tempo = MulticoreSimulator(config.with_tempo(True), traces).run()
    assert tempo.weighted_speedup > baseline.weighted_speedup


def test_alone_results_reusable(config, traces):
    multicore = MulticoreSimulator(config, traces)
    alone = multicore.run_alone()
    result = multicore.run(alone_results=alone)
    rerun = multicore.run(alone_results=alone)
    assert result.weighted_speedup == rerun.weighted_speedup


def test_bliss_scheduler_runs_multicore(config, traces):
    bliss_config = config.copy_with(
        scheduler=replace(config.scheduler, policy="bliss")
    )
    result = MulticoreSimulator(bliss_config, traces).run()
    assert result.weighted_speedup > 0


def test_subrow_banks_run_multicore(config, traces):
    subrows = replace(config.dram.subrows, enabled=True)
    subrow_config = config.copy_with(dram=replace(config.dram, subrows=subrows))
    result = MulticoreSimulator(subrow_config, traces).run()
    assert result.weighted_speedup > 0


def test_multicore_deterministic(config, traces):
    first = SystemSimulator(config, traces, seed=5).run().total_cycles
    second = SystemSimulator(config, traces, seed=5).run().total_cycles
    assert first == second


def test_light_app_is_the_less_slowed(config, traces):
    multicore = MulticoreSimulator(config.with_tempo(False), traces)
    result = multicore.run()
    slowdowns = {
        shared.workload_name: shared.cycles / alone.core.cycles
        for shared, alone in zip(result.shared.cores, result.alone)
    }
    # The compute-bound app suffers less from memory interference.
    assert slowdowns["light"] <= slowdowns["heavy"] + 0.5
