"""Tests for the DRAM address interleave."""

import pytest

from repro.common.config import DramConfig
from repro.dram.address_map import AddressMap


@pytest.fixture
def amap():
    return AddressMap(DramConfig())


def test_decode_fields_in_range(amap):
    config = amap.config
    for paddr in (0, 0x1234_5678, 0xFFFF_FFFF, 0xAB_CDEF_0123):
        location = amap.decode(paddr)
        assert 0 <= location.channel < config.channels
        assert 0 <= location.bank < config.banks_per_channel
        assert 0 <= location.row_offset < config.row_bytes


def test_same_8k_chunk_same_row(amap):
    """Figure 8's geometry: two adjacent 4 KB pages share one 8 KB row."""
    base = 0x40000000
    assert amap.same_row(base, base + 4096)
    assert amap.same_row(base, base + 8191)
    assert not amap.same_row(base, base + 8192)


def test_adjacent_ptes_same_row(amap):
    """1024 consecutive 8-byte PTEs share a row."""
    pte_base = 0x40000
    assert amap.same_row(pte_base, pte_base + 1016)


def test_bank_index_consistent_with_decode(amap):
    for paddr in (0x0, 0x2000, 0x123456, 0xDEADBEEF):
        location = amap.decode(paddr)
        flat = location.channel * amap.config.banks_per_channel + location.bank
        assert amap.bank_index(paddr) == flat


def test_consecutive_chunks_rotate_channels(amap):
    channels = {amap.decode(i * 8192).channel for i in range(4)}
    assert len(channels) == amap.config.channels


def test_row_of_stable_within_row(amap):
    base = 0x80000000
    rows = {amap.row_of(base + offset) for offset in range(0, 8192, 512)}
    assert len(rows) == 1


def test_row_base_paddr(amap):
    assert amap.row_base_paddr(0x40001234) == 0x40000000
    assert amap.row_base_paddr(0x40000000) == 0x40000000


def test_total_banks(amap):
    assert amap.total_banks == amap.config.channels * amap.config.banks_per_channel


def test_dram_location_equality_and_hash(amap):
    a = amap.decode(0x12345)
    b = amap.decode(0x12345)
    assert a == b
    assert hash(a) == hash(b)
    assert a != amap.decode(0x99999999)
