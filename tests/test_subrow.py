"""Tests for sub-row buffers with FOA/POA allocation."""

from dataclasses import replace

import pytest

from repro.common.config import DramConfig, SubRowConfig
from repro.common.errors import ConfigError
from repro.dram.bank import OUTCOME_HIT, OUTCOME_MISS
from repro.dram.subrow import PREFETCH_OWNER, SubRowBank


def _config(num_subrows=8, dedicated=2, allocation="foa"):
    return DramConfig(
        subrows=SubRowConfig(
            enabled=True,
            num_subrows=num_subrows,
            allocation=allocation,
            dedicated_prefetch_subrows=dedicated,
        )
    )


def _bank(num_cpus=2, **kwargs):
    return SubRowBank(0, 16, _config(**kwargs), num_cpus=num_cpus)


def test_requires_enabled_config():
    with pytest.raises(ConfigError):
        SubRowBank(0, 16, DramConfig(), num_cpus=1)


def test_segment_granularity():
    bank = _bank()
    assert bank.subrow_bytes == 1024  # 8 KB row / 8 sub-rows
    _, end, _ = bank.access(7, 0, row_offset=0)
    # Same row, same 1 KB segment: hit.
    assert bank.access(7, end, row_offset=512)[2] == OUTCOME_HIT
    # Same row, different segment: miss (separate sub-row).
    assert bank.access(7, end * 2, row_offset=2048)[2] == OUTCOME_MISS


def test_multiple_rows_partially_open():
    bank = _bank()
    _, end, _ = bank.access(1, 0, cpu=0, row_offset=0)
    _, end, _ = bank.access(2, end, cpu=1, row_offset=0)
    assert bank.classify(1, end, row_offset=0) == OUTCOME_HIT
    assert bank.classify(2, end, row_offset=0) == OUTCOME_HIT


def test_no_conflict_outcome_ever():
    bank = _bank()
    time = 0
    for row in range(40):
        _, time, outcome = bank.access(row, time, cpu=row % 2, row_offset=0)
        assert outcome in (OUTCOME_HIT, OUTCOME_MISS)


def test_dedicated_slots_hold_prefetches():
    bank = _bank(dedicated=2)
    owners = [slot.owner for slot in bank.slots]
    assert owners[:2] == [PREFETCH_OWNER, PREFETCH_OWNER]
    _, end, _ = bank.access(9, 0, is_prefetch=True, row_offset=0)
    prefetch_slots = [slot for slot in bank.slots if slot.owner == PREFETCH_OWNER]
    assert any(slot.content == (9, 0) for slot in prefetch_slots)


def test_demand_traffic_cannot_evict_dedicated_prefetch():
    bank = _bank(num_cpus=1, dedicated=2)
    _, end, _ = bank.access(9, 0, is_prefetch=True, row_offset=0)
    # Flood demand accesses: they may only use the 6 general slots.
    time = end
    for row in range(20, 60):
        _, time, _ = bank.access(row, time, cpu=0, row_offset=0)
    assert bank.classify(9, time, row_offset=0) == OUTCOME_HIT


def test_prefetches_compete_within_dedicated_slots():
    bank = _bank(dedicated=2)
    time = 0
    for row in (1, 2, 3):  # three prefetches, two dedicated slots
        _, time, _ = bank.access(row, time, is_prefetch=True, row_offset=0)
    assert bank.classify(1, time, row_offset=0) == OUTCOME_MISS  # LRU victim
    assert bank.classify(3, time, row_offset=0) == OUTCOME_HIT


def test_foa_partitions_general_slots_round_robin():
    bank = _bank(num_cpus=2, dedicated=2)
    general_owners = [slot.owner for slot in bank.slots if slot.owner != PREFETCH_OWNER]
    assert general_owners == [0, 1, 0, 1, 0, 1]


def test_foa_cpu_cannot_evict_other_cpus_slots():
    bank = _bank(num_cpus=2, dedicated=0)
    _, end, _ = bank.access(5, 0, cpu=1, row_offset=0)
    time = end
    for row in range(10, 40):  # cpu 0 floods its own partition
        _, time, _ = bank.access(row, time, cpu=0, row_offset=0)
    assert bank.classify(5, time, row_offset=0) == OUTCOME_HIT


def test_poa_repartitions_toward_demanding_cpu():
    bank = _bank(num_cpus=2, dedicated=0, allocation="poa")
    time = 0
    # CPU 0 generates nearly all traffic for > one epoch.
    for i in range(600):
        _, time, _ = bank.access(i % 50, time, cpu=0, row_offset=0)
    owners = [slot.owner for slot in bank.slots]
    assert owners.count(0) > owners.count(1)


def test_zero_dedicated_lets_prefetch_use_general():
    bank = _bank(dedicated=0)
    _, end, _ = bank.access(9, 0, is_prefetch=True, row_offset=0)
    assert bank.classify(9, end, row_offset=0) == OUTCOME_HIT


def test_interface_parity_with_bank():
    bank = _bank()
    bank.reserve(cpu=1, until=100)
    assert bank.reserved_against(0, 50)
    assert not bank.reserved_against(1, 50)
    start, end, outcome = bank.access(3, 0, keep_open_extra=10, latency_override=60)
    assert end - start == 60


def test_open_row_reports_mru():
    bank = _bank()
    _, end, _ = bank.access(1, 0, row_offset=0)
    _, end, _ = bank.access(2, end, row_offset=0)
    assert bank.open_row == 2
