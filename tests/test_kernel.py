"""Tests for the struct-of-arrays batch kernel (``--kernel batch``).

The contract under test is absolute: the batch kernel must be
bit-identical to the scalar engine on every workload, at every batch
size, across warmup boundaries, on multiple cores, and with the
pure-Python mirror build -- the only stat allowed to differ is the
``manifest.kernel`` tag itself (and wall-clock timings).
"""

import pytest

import repro.sim.kernel as kernel_mod
from repro.common.config import default_system_config
from repro.common.errors import ConfigError
from repro.exec import ExperimentExecutor, SimCell
from repro.exec.resilience import ResiliencePolicy, needs_isolation
from repro.sim.kernel import BatchKernel
from repro.sim.system import SystemSimulator
from repro.workloads.registry import (
    BIGDATA_WORKLOADS,
    EXTENSION_WORKLOADS,
    SMALL_WORKLOADS,
    make_trace,
)

ALL_WORKLOADS = [
    w.name for w in BIGDATA_WORKLOADS + SMALL_WORKLOADS + EXTENSION_WORKLOADS
]


def _stats(workload, kernel=None, length=500, batch_size=None, warmup=None,
           cores=1, check_invariants=None, config=None):
    """Run and return the comparable stats (kernel tag + timings stripped)."""
    if config is None:
        config = default_system_config()
    traces = [
        make_trace(workload, length=length, seed=seed) for seed in range(cores)
    ]
    kwargs = {"seed": 0, "kernel": kernel, "check_invariants": check_invariants}
    if batch_size is not None:
        kwargs["batch_size"] = batch_size
    result = SystemSimulator(config, traces, **kwargs).run(warmup=warmup)
    return {
        key: value
        for key, value in result.stats.items()
        if not key.startswith("manifest.timing") and key != "manifest.kernel"
    }


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_batch_matches_scalar_on_every_workload(workload):
    assert _stats(workload, "batch") == _stats(workload, "scalar")


def test_batch_size_one_matches_scalar():
    assert _stats("bzip2_small", "batch", batch_size=1) == _stats(
        "bzip2_small", "scalar"
    )


def test_batch_size_larger_than_trace_matches_scalar():
    assert _stats("bzip2_small", "batch", batch_size=10**6) == _stats(
        "bzip2_small", "scalar"
    )


def test_warmup_boundary_mid_batch_matches_scalar():
    # warmup=337 with batch_size=256 puts the measurement reset inside
    # the second chunk; the kernel must stop the run exactly there.
    assert _stats(
        "bzip2_small", "batch", length=800, warmup=337, batch_size=256
    ) == _stats("bzip2_small", "scalar", length=800, warmup=337)


@pytest.mark.parametrize("cores", [2, 3])
def test_multicore_interleave_matches_scalar(cores):
    assert _stats("xsbench", "batch", cores=cores) == _stats(
        "xsbench", "scalar", cores=cores
    )


def test_multicore_tail_drain_matches_scalar():
    """Cores with different trace lengths: the longer core drains its
    tail after the shorter retires, exercising the per-core bound."""
    config = default_system_config()

    def run(kernel):
        traces = [
            make_trace("btree", length=700, seed=0),
            make_trace("btree", length=300, seed=1),
        ]
        result = SystemSimulator(config, traces, seed=0, kernel=kernel).run()
        return {
            key: value
            for key, value in result.stats.items()
            if not key.startswith("manifest.timing") and key != "manifest.kernel"
        }

    assert run("batch") == run("scalar")


def test_check_invariants_full_with_batch_matches_scalar():
    # Audit hooks need per-record visibility, so batch runs fall back
    # to the scalar path -- and must stay bit-identical doing it.
    assert _stats("btree", "batch", check_invariants="full") == _stats(
        "btree", "scalar", check_invariants="full"
    )


def test_pure_python_fallback_matches_scalar(monkeypatch):
    monkeypatch.setattr(kernel_mod, "_np", None)
    assert _stats("xsbench", "batch") == _stats("xsbench", "scalar")


def test_fallback_mirrors_equal_numpy_mirrors(monkeypatch):
    """The two chunk builds must produce identical SoA mirrors."""
    if kernel_mod._np is None:
        pytest.skip("numpy not available; only the fallback build exists")
    config = default_system_config()

    def mirrors():
        trace = make_trace("btree", length=300, seed=3)
        simulator = SystemSimulator(config, [trace], seed=0, kernel="batch")
        kern = BatchKernel(simulator, simulator.cores[0], batch_size=128)
        kern._load_chunk(0)
        return kern._vpns, kern._offs, kern._gaps, kern._writes

    with_numpy = mirrors()
    monkeypatch.setattr(kernel_mod, "_np", None)
    without_numpy = mirrors()
    assert with_numpy == without_numpy


def test_manifest_records_kernel():
    config = default_system_config()
    trace = make_trace("btree", length=300, seed=0)
    result = SystemSimulator(config, [trace], seed=0, kernel="batch").run()
    assert result.stats["manifest.kernel"] == "batch"
    trace = make_trace("btree", length=300, seed=0)
    result = SystemSimulator(config, [trace], seed=0).run()
    assert result.stats["manifest.kernel"] == "scalar"


def test_invalid_kernel_rejected():
    config = default_system_config()
    trace = make_trace("btree", length=100, seed=0)
    with pytest.raises(ConfigError):
        SystemSimulator(config, [trace], kernel="simd")


def test_invalid_batch_size_rejected():
    config = default_system_config()
    trace = make_trace("btree", length=100, seed=0)
    with pytest.raises(ConfigError):
        SystemSimulator(config, [trace], kernel="batch", batch_size=0)


def test_executor_threads_kernel_into_cells():
    config = default_system_config()
    batch = ExperimentExecutor(kernel="batch").run_cell(
        SimCell("btree", config, 400)
    )
    scalar = ExperimentExecutor().run_cell(SimCell("btree", config, 400))
    assert batch.stats["manifest.kernel"] == "batch"
    assert scalar.stats["manifest.kernel"] == "scalar"

    def comparable(result):
        return {
            key: value
            for key, value in result.stats.items()
            if not key.startswith("manifest.timing") and key != "manifest.kernel"
        }

    assert comparable(batch) == comparable(scalar)


def test_needs_isolation_routing():
    """The persistent pool amortizes spawn cost, so any multi-cell batch
    with workers > 1 pools; single cells and workers=1 stay inline, and
    kill/stall faults or a cell timeout always force the pool."""
    config = default_system_config()
    policy = ResiliencePolicy()
    several = {
        str(index): SimCell("btree", config, 800, seed=index)
        for index in range(4)
    }
    one = {"0": SimCell("btree", config, 800, seed=0)}
    assert needs_isolation(4, policy, None, pending=several)
    assert not needs_isolation(4, policy, None, pending=one)
    # workers=1 never pools on its own; a cell timeout always does.
    assert not needs_isolation(1, policy, None, pending=several)
    timeout_policy = ResiliencePolicy(cell_timeout=5.0)
    assert needs_isolation(1, timeout_policy, None, pending=one)
    # Kill and stall faults need a killable process regardless of size.
    from repro.exec.faults import FaultPlan

    kills = FaultPlan(kill={"0": (0,)})
    stalls = FaultPlan(stall={"0": (0,)})
    assert needs_isolation(1, policy, kills, pending=one)
    assert needs_isolation(1, policy, stalls, pending=one)


def test_cli_kernel_flag():
    import io

    from repro.cli import main

    out = io.StringIO()
    assert main(["run", "btree", "--length", "300", "--kernel", "batch"],
                out=out) == 0
    with pytest.raises(SystemExit):
        main(["run", "btree", "--length", "300", "--kernel", "simd"],
             out=io.StringIO())


def test_numpy_available_reports_module_state(monkeypatch):
    assert kernel_mod.numpy_available() == (kernel_mod._np is not None)
    monkeypatch.setattr(kernel_mod, "_np", None)
    assert not kernel_mod.numpy_available()
