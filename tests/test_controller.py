"""Tests for the memory controller (queues, TEMPO hooks, timing)."""

from dataclasses import replace

import pytest

from repro.common.config import default_system_config
from repro.core.prefetch_engine import PrefetchEngine
from repro.dram.bank import OUTCOME_HIT
from repro.dram.energy import EnergyModel
from repro.sched.controller import MemoryController
from repro.sched.request import (
    KIND_DEMAND,
    KIND_PT,
    KIND_TEMPO_PREFETCH,
    MemoryRequest,
)
from repro.vm.page_table import PageTableEntry


def _controller(tempo=True, **config_overrides):
    config = default_system_config().with_tempo(tempo)
    if config_overrides:
        config = config.copy_with(**config_overrides)
    engine = PrefetchEngine(config.tempo) if tempo else None
    energy = EnergyModel(config.energy, tempo_enabled=tempo)
    return MemoryController(config, energy, engine), config


def _tagged_pt(paddr=0x40000, frame=0xABC000, line=0, cpu=0):
    pte = PageTableEntry(present=True, is_leaf=True, frame_paddr=frame, page_size=4096)
    return MemoryRequest(
        paddr, KIND_PT, cpu=cpu, tempo_tagged=True, pte=pte,
        replay_line_index=line, pt_leaf=True,
    )


def test_demand_submit_and_wait_completes():
    controller, config = _controller(tempo=False)
    request = MemoryRequest(0x123456, KIND_DEMAND, enqueue_time=100)
    finish = controller.submit_and_wait(request, 100)
    assert finish == request.finish_time
    expected_min = 100 + config.dram.row_miss_cycles + config.dram.controller_overhead_cycles
    assert finish >= expected_min


def test_requests_to_same_bank_serialize():
    controller, config = _controller(tempo=False)
    first = MemoryRequest(0x0, KIND_DEMAND)
    second = MemoryRequest(0x100, KIND_DEMAND)  # same row, same bank
    end1 = controller.submit_and_wait(first, 0)
    controller.submit_and_wait(second, 0)
    assert second.start_time >= first.start_time
    assert second.outcome == OUTCOME_HIT  # open row


def test_tagged_pt_triggers_prefetch():
    controller, config = _controller(tempo=True)
    pt = _tagged_pt(frame=0xABC000, line=5)
    controller.submit_and_wait(pt, 0)
    assert controller.stats.counter("tempo_prefetches_enqueued").value == 1
    # Drain and collect the outcome.
    controller.drain_all()
    outcome = controller.take_prefetch_outcome(pt.req_id)
    assert outcome is not None and not outcome.dropped
    assert outcome.paddr == 0xABC000 + 5 * 64
    assert outcome.row_ready_at is not None
    assert outcome.llc_ready_at > outcome.row_ready_at


def test_prefetch_respects_wait_window():
    controller, config = _controller(tempo=True)
    pt = _tagged_pt()
    pt_finish = controller.submit_and_wait(pt, 0)
    controller.drain_all()
    outcome = controller.take_prefetch_outcome(pt.req_id)
    pt_end = pt_finish - config.dram.controller_overhead_cycles
    # The prefetch could not have started before end + wait_cycles.
    earliest_row_ready = pt_end + config.tempo.wait_cycles + 1
    assert outcome.row_ready_at >= earliest_row_ready


def test_prefetch_opens_target_row():
    controller, _ = _controller(tempo=True)
    pt = _tagged_pt(frame=0xABC000, line=5)
    controller.submit_and_wait(pt, 0)
    controller.drain_all()
    outcome = controller.take_prefetch_outcome(pt.req_id)
    assert controller.device.row_open(outcome.paddr, outcome.row_ready_at)


def test_untagged_pt_triggers_nothing():
    controller, _ = _controller(tempo=True)
    request = MemoryRequest(0x40000, KIND_PT, pt_leaf=True)
    controller.submit_and_wait(request, 0)
    assert controller.stats.counter("tempo_prefetches_enqueued").value == 0


def test_no_engine_no_prefetch():
    controller, _ = _controller(tempo=False)
    pt = _tagged_pt()
    controller.submit_and_wait(pt, 0)
    controller.drain_all()
    assert controller.take_prefetch_outcome(pt.req_id) is None


def test_cancel_prefetch_removes_queued():
    controller, _ = _controller(tempo=True)
    pt = _tagged_pt()
    controller.submit_and_wait(pt, 0)
    # The prefetch is queued (not_before in the future): cancel it.
    assert controller.cancel_prefetch(pt.req_id)
    controller.drain_all()
    assert controller.take_prefetch_outcome(pt.req_id) is None
    assert not controller.cancel_prefetch(pt.req_id)


def test_advance_to_services_due_prefetch():
    controller, config = _controller(tempo=True)
    pt = _tagged_pt()
    finish = controller.submit_and_wait(pt, 0)
    controller.advance_to(finish + 500)
    outcome = controller.take_prefetch_outcome(pt.req_id)
    assert outcome is not None


def test_txq_overflow_drops_prefetches():
    controller, config = _controller(
        tempo=True, dram=replace(default_system_config().dram, txq_capacity=4)
    )
    # Stuff the queue with future-dated prefetches to one channel.
    base = 0x0
    for index in range(6):
        request = MemoryRequest(
            base, KIND_TEMPO_PREFETCH, not_before=10**9, origin_pt_id=1000 + index
        )
        controller.submit_async(request, 0)
    assert controller.stats.counter("prefetch_dropped_txq_full").value >= 2
    # Dropped prefetches record a dropped outcome for their walk.
    dropped = [
        controller.take_prefetch_outcome(1000 + index) for index in range(6)
    ]
    assert any(outcome is not None and outcome.dropped for outcome in dropped)


def test_writebacks_yield_to_demands():
    controller, _ = _controller(tempo=False)
    controller.submit_writeback(0x9000, cpu=0, now=0)
    demand = MemoryRequest(0x0, KIND_DEMAND, enqueue_time=5)
    controller.submit_and_wait(demand, 5)
    # The writeback is still pending; the demand went first.
    assert controller.pending_requests() == 1
    controller.drain_all()
    assert controller.pending_requests() == 0


def test_grace_period_reserves_bank():
    controller, config = _controller(tempo=True)
    pt = _tagged_pt(cpu=3)
    controller.submit_and_wait(pt, 0)
    controller.drain_all()
    outcome = controller.take_prefetch_outcome(pt.req_id)
    bank = controller.device.bank_for(outcome.paddr)
    assert bank.reserved_cpu == 3
    assert bank.reserved_until > outcome.row_ready_at


def test_energy_recorded_per_access():
    controller, _ = _controller(tempo=False)
    before = controller.energy.stats.counter("dram_accesses").value
    controller.submit_and_wait(MemoryRequest(0x123, KIND_DEMAND), 0)
    assert controller.energy.stats.counter("dram_accesses").value == before + 1


def test_channels_progress_independently():
    controller, config = _controller(tempo=False)
    # 0x0 and 0x2000 land on different channels with the default map.
    first = MemoryRequest(0x0, KIND_DEMAND)
    second = MemoryRequest(0x2000, KIND_DEMAND)
    controller.submit_and_wait(first, 0)
    controller.submit_and_wait(second, 0)
    assert second.start_time == 0  # not serialized behind channel 0
