"""Tests for TEMPO's prefetch engine."""

import pytest

from repro.common.config import TempoConfig
from repro.sched.request import KIND_PT, KIND_TEMPO_PREFETCH, MemoryRequest
from repro.core.prefetch_engine import PrefetchEngine
from repro.vm.page_table import PageTableEntry


def _engine(**overrides):
    return PrefetchEngine(TempoConfig(**overrides))


def _tagged_pt(frame=0xABC000, line=3, present=True):
    pte = PageTableEntry(present=present, is_leaf=True, frame_paddr=frame, page_size=4096)
    return MemoryRequest(
        0x40000, KIND_PT, cpu=2, tempo_tagged=True, pte=pte, replay_line_index=line,
        pt_leaf=True,
    )


def test_builds_prefetch_with_reconstructed_address():
    engine = _engine()
    prefetch = engine.build_prefetch(_tagged_pt(frame=0xABC000, line=3), 1000)
    assert prefetch is not None
    assert prefetch.kind == KIND_TEMPO_PREFETCH
    assert prefetch.paddr == 0xABC000 + 3 * 64
    assert prefetch.cpu == 2


def test_prefetch_respects_anticipation_window():
    engine = _engine(wait_cycles=10)
    prefetch = engine.build_prefetch(_tagged_pt(), 1000)
    assert prefetch.not_before == 1010
    assert prefetch.enqueue_time == 1000


def test_prefetch_links_origin():
    engine = _engine()
    pt = _tagged_pt()
    prefetch = engine.build_prefetch(pt, 1000)
    assert prefetch.origin_pt_id == pt.req_id


def test_page_fault_suppression():
    """Paper Sec. 4.5: non-present translations must not prefetch."""
    engine = _engine()
    assert engine.build_prefetch(_tagged_pt(present=False), 1000) is None
    assert engine.stats.counter("suppressed_not_present").value == 1


def test_missing_pte_suppressed():
    engine = _engine()
    request = MemoryRequest(0x40000, KIND_PT, tempo_tagged=True, pte=None)
    assert engine.build_prefetch(request, 1000) is None


def test_untagged_requests_ignored():
    engine = _engine()
    request = MemoryRequest(0x40000, KIND_PT, tempo_tagged=False)
    assert engine.build_prefetch(request, 1000) is None


def test_disabled_engine_is_inert():
    engine = _engine(enabled=False, llc_prefetch=False)
    assert not engine.active
    assert engine.build_prefetch(_tagged_pt(), 1000) is None


def test_row_only_mode_has_no_llc_ready_time():
    engine = _engine(llc_prefetch=False)
    assert engine.llc_ready_time(500) is None


def test_llc_ready_time_adds_ship_latency():
    engine = _engine(prefetch_llc_extra_cycles=25)
    assert engine.llc_ready_time(500) == 525


def test_non_speculative_address_is_exact():
    """Paper Sec. 3: the engine's address is always the replay's."""
    from repro.common.addressing import cache_line_base, translate

    engine = _engine()
    vaddr = 0x7654_3000 + 7 * 64 + 13
    frame = 0x00F0_0000
    from repro.common.addressing import line_index_in_page

    pt = _tagged_pt(frame=frame, line=line_index_in_page(vaddr))
    prefetch = engine.build_prefetch(pt, 0)
    assert prefetch.paddr == cache_line_base(translate(vaddr, frame))
