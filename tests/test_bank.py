"""Tests for the bank row-buffer state machine + DRAM device."""

import pytest

from repro.common.config import DramConfig, RowPolicyConfig
from repro.dram.bank import (
    OUTCOME_CONFLICT,
    OUTCOME_HIT,
    OUTCOME_MISS,
    Bank,
    DramDevice,
)
from repro.dram.row_policy import ClosedRowPolicy, OpenRowPolicy, make_row_policy


def _bank(policy=None, config=None):
    config = config if config is not None else DramConfig()
    policy = policy if policy is not None else OpenRowPolicy()
    return Bank(0, 16, config, policy), config


def test_first_access_is_miss():
    bank, config = _bank()
    start, end, outcome = bank.access(7, now=100)
    assert outcome == OUTCOME_MISS
    assert (start, end) == (100, 100 + config.row_miss_cycles)


def test_same_row_hits_under_open_policy():
    bank, config = _bank()
    _, end, _ = bank.access(7, 0)
    start, end2, outcome = bank.access(7, end)
    assert outcome == OUTCOME_HIT
    assert end2 - start == config.row_hit_cycles


def test_different_row_conflicts_under_open_policy():
    bank, config = _bank()
    _, end, _ = bank.access(7, 0)
    _, _, outcome = bank.access(9, end)
    assert outcome == OUTCOME_CONFLICT


def test_closed_policy_turns_conflicts_into_misses():
    bank, _ = _bank(policy=ClosedRowPolicy())
    _, end, _ = bank.access(7, 0)
    _, _, outcome = bank.access(9, end)
    assert outcome == OUTCOME_MISS
    _, _, outcome = bank.access(9, end * 2)
    assert outcome == OUTCOME_MISS  # even same-row repeats miss


def test_bank_serializes_via_ready_at():
    bank, config = _bank()
    _, end, _ = bank.access(7, 0)
    start, _, _ = bank.access(7, now=end - 20)
    assert start == end


def test_adaptive_auto_close_converts_conflict_to_miss():
    policy = make_row_policy(RowPolicyConfig(policy="adaptive", predictor_initial_window=50))
    bank, _ = _bank(policy=policy)
    _, end, _ = bank.access(7, 0)
    # Arrive long after the predicted close: the row was put away.
    _, _, outcome = bank.access(9, end + 500)
    assert outcome == OUTCOME_MISS


def test_keep_open_extra_extends_closed_rows():
    bank, config = _bank(policy=ClosedRowPolicy())
    _, end, _ = bank.access(7, 0, keep_open_extra=10)
    # Within the anticipation window the row is still open.
    _, _, outcome = bank.access(7, end + 5)
    assert outcome == OUTCOME_HIT


def test_keep_open_extra_expires():
    bank, _ = _bank(policy=ClosedRowPolicy())
    _, end, _ = bank.access(7, 0, keep_open_extra=10)
    _, _, outcome = bank.access(7, end + 50)
    assert outcome == OUTCOME_MISS


def test_latency_override():
    bank, config = _bank()
    start, end, outcome = bank.access(7, 0, latency_override=60)
    assert end - start == 60
    assert outcome == OUTCOME_MISS


def test_classify_does_not_mutate():
    bank, _ = _bank()
    bank.access(7, 0)
    assert bank.classify(7, 10_000) == OUTCOME_HIT
    assert bank.classify(9, 10_000) == OUTCOME_CONFLICT
    assert bank.classify(7, 10_000) == OUTCOME_HIT  # unchanged


def test_reservation_semantics():
    bank, _ = _bank()
    bank.reserve(cpu=3, until=500)
    assert bank.reserved_against(cpu=1, now=100)
    assert not bank.reserved_against(cpu=3, now=100)  # owner passes
    assert not bank.reserved_against(cpu=1, now=500)  # expired


def test_effective_open_row_with_auto_close():
    policy = make_row_policy(RowPolicyConfig(policy="adaptive", predictor_initial_window=50))
    bank, _ = _bank(policy=policy)
    _, end, _ = bank.access(7, 0)
    assert bank.effective_open_row(end + 10) == 7
    assert bank.effective_open_row(end + 100) is None


# ---------------------------------------------------------------------
# DramDevice
# ---------------------------------------------------------------------

def test_device_builds_all_banks():
    device = DramDevice(DramConfig(), RowPolicyConfig())
    assert len(device.banks) == device.address_map.total_banks


def test_device_routes_by_address():
    device = DramDevice(DramConfig(), RowPolicyConfig(policy="open"))
    a, b = 0x0, 0x2000  # different 8 KB chunks -> different banks/channels
    assert device.bank_for(a) is not device.bank_for(b)


def test_device_row_open_tracks_access():
    device = DramDevice(DramConfig(), RowPolicyConfig(policy="open"))
    paddr = 0x123456
    assert not device.row_open(paddr, 0)
    _, end, _ = device.access(paddr, 0)
    assert device.row_open(paddr, end)
    assert device.row_open(paddr + 100, end)  # same row


def test_device_stats_aggregate_outcomes():
    device = DramDevice(DramConfig(), RowPolicyConfig(policy="open"))
    _, end, _ = device.access(0x1000, 0)
    device.access(0x1040, end)
    counters = device.stats.as_dict()
    assert counters["dram.bank.miss"] == 1
    assert counters["dram.bank.hit"] == 1


# ---------------------------------------------------------------------
# Refresh
# ---------------------------------------------------------------------

def test_refresh_closes_open_row():
    from dataclasses import replace

    config = replace(DramConfig(), refresh_interval_cycles=1000, refresh_cycles=100)
    bank = Bank(0, 16, config, OpenRowPolicy())
    bank.access(7, 0)
    # Crossing the refresh boundary precharges the bank: same row misses.
    _, _, outcome = bank.access(7, 1500)
    assert outcome == OUTCOME_MISS
    assert bank.stats.counter("refreshes").value >= 1


def test_refresh_delays_colliding_access():
    from dataclasses import replace

    config = replace(DramConfig(), refresh_interval_cycles=1000, refresh_cycles=100)
    bank = Bank(0, 16, config, OpenRowPolicy())
    # Arrive exactly at the refresh point: wait out the refresh.
    start, _, _ = bank.access(3, 1000)
    assert start >= 1100


def test_refresh_catches_up_after_idle():
    from dataclasses import replace

    config = replace(DramConfig(), refresh_interval_cycles=1000, refresh_cycles=100)
    bank = Bank(0, 16, config, OpenRowPolicy())
    bank.access(3, 50_000)  # many intervals passed while idle
    assert bank.next_refresh_at > 50_000
    # Idle-period refreshes do not stack their delays onto the access.
    assert bank.stats.counter("refreshes").value == 50


def test_refresh_disabled_with_zero_interval():
    from dataclasses import replace

    config = replace(DramConfig(), refresh_interval_cycles=0)
    bank = Bank(0, 16, config, OpenRowPolicy())
    bank.access(3, 10**7)
    assert bank.stats.counter("refreshes").value == 0
    _, _, outcome = bank.access(3, 2 * 10**7)
    assert outcome == OUTCOME_HIT  # never refreshed away
