"""Tests for the two-level TLB hierarchy."""

import pytest

from repro.common.config import TlbConfig
from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.mmu.tlb import SetAssociativeTlb, TlbHierarchy


def _tlb(entries=8, assoc=2, page_size=PAGE_SIZE_4K):
    return SetAssociativeTlb(entries, assoc, page_size)


def test_miss_then_hit():
    tlb = _tlb()
    assert tlb.lookup(0x1000) is None
    tlb.insert(0x1000, 0xAA000)
    assert tlb.lookup(0x1234) == 0xAA000  # same page


def test_lru_eviction_within_set():
    tlb = _tlb(entries=8, assoc=2)
    sets = 4
    # Three pages mapping to the same set (vpn % 4 equal).
    base_vpns = [1, 1 + sets, 1 + 2 * sets]
    for i, vpn in enumerate(base_vpns[:2]):
        tlb.insert(vpn << 12, i)
    tlb.lookup(base_vpns[0] << 12)  # refresh first -> second is LRU
    tlb.insert(base_vpns[2] << 12, 99)
    assert tlb.lookup(base_vpns[1] << 12) is None  # evicted
    assert tlb.lookup(base_vpns[0] << 12) == 0


def test_insert_returns_victim():
    tlb = _tlb(entries=2, assoc=2)
    tlb.insert(0 << 12, 10)
    tlb.insert(2 << 12, 20)  # wait: sets=1, both in set 0
    victim = tlb.insert(4 << 12, 30)
    assert victim == (0, 10)


def test_invalidate():
    tlb = _tlb()
    tlb.insert(0x1000, 0xAA000)
    assert tlb.invalidate(0x1000)
    assert tlb.lookup(0x1000) is None
    assert not tlb.invalidate(0x1000)


def test_flush():
    tlb = _tlb()
    for i in range(4):
        tlb.insert(i << 12, i)
    tlb.flush()
    assert tlb.occupancy == 0


def test_occupancy_bounded_by_capacity():
    tlb = _tlb(entries=8, assoc=2)
    for i in range(100):
        tlb.insert(i << 12, i)
    assert tlb.occupancy <= 8


def test_2m_tlb_uses_2m_vpns():
    tlb = _tlb(page_size=PAGE_SIZE_2M)
    tlb.insert(0x40000000, 0xAA00000)
    # Anywhere within the same 2 MB page hits.
    assert tlb.lookup(0x40000000 + PAGE_SIZE_2M - 1) == 0xAA00000
    assert tlb.lookup(0x40000000 + PAGE_SIZE_2M) is None


def test_hit_rate():
    tlb = _tlb()
    tlb.insert(0x1000, 1)
    tlb.lookup(0x1000)
    tlb.lookup(0x2000)
    assert tlb.hit_rate() == pytest.approx(0.5)


# ---------------------------------------------------------------------
# Hierarchy
# ---------------------------------------------------------------------

@pytest.fixture
def hierarchy():
    return TlbHierarchy(TlbConfig())


def test_hierarchy_full_miss_then_fill(hierarchy):
    assert hierarchy.lookup(0x1000) is None
    hierarchy.fill(0x1000, 0xAA000, PAGE_SIZE_4K)
    frame, size, latency = hierarchy.lookup(0x1000)
    assert (frame, size, latency) == (0xAA000, PAGE_SIZE_4K, 0)


def test_hierarchy_l2_hit_refills_l1(hierarchy):
    config = TlbConfig()
    hierarchy.fill(0x1000, 0xAA000, PAGE_SIZE_4K)
    # Push the entry out of the tiny L1 by filling conflicting pages.
    sets = config.l1_entries_4k // config.l1_assoc_4k
    for i in range(1, config.l1_assoc_4k + 2):
        hierarchy.fill((1 + i * sets) << 12, i, PAGE_SIZE_4K)
    # Entry 0x1000 may have been L1-evicted; L2 still holds it.
    result = hierarchy.lookup(0x1000)
    assert result is not None
    frame, size, latency = result
    assert frame == 0xAA000
    # A second lookup must be an L1 hit (latency 0) after the refill.
    assert hierarchy.lookup(0x1000)[2] == 0


def test_hierarchy_l2_excludes_1g_by_default(hierarchy):
    config = TlbConfig()
    hierarchy.fill(PAGE_SIZE_1G, 0x100000000, PAGE_SIZE_1G)
    # Evict from the 4-entry L1-1G array.
    for i in range(2, 2 + config.l1_entries_1g + 1):
        hierarchy.fill(i * PAGE_SIZE_1G, i, PAGE_SIZE_1G)
    assert hierarchy.lookup(PAGE_SIZE_1G) is None  # gone entirely


def test_hierarchy_l2_holds_1g_when_configured():
    hierarchy = TlbHierarchy(TlbConfig(l2_holds_1g=True))
    config = TlbConfig()
    hierarchy.fill(PAGE_SIZE_1G, 0x100000000, PAGE_SIZE_1G)
    for i in range(2, 2 + config.l1_entries_1g + 1):
        hierarchy.fill(i * PAGE_SIZE_1G, i, PAGE_SIZE_1G)
    result = hierarchy.lookup(PAGE_SIZE_1G)
    assert result is not None and result[0] == 0x100000000


def test_hierarchy_mixed_page_sizes(hierarchy):
    hierarchy.fill(0x1000, 0xAA000, PAGE_SIZE_4K)
    hierarchy.fill(0x40000000, 0xBB00000, PAGE_SIZE_2M)
    assert hierarchy.lookup(0x1500)[1] == PAGE_SIZE_4K
    assert hierarchy.lookup(0x40012345)[1] == PAGE_SIZE_2M


def test_hierarchy_invalidate(hierarchy):
    hierarchy.fill(0x1000, 0xAA000, PAGE_SIZE_4K)
    assert hierarchy.invalidate(0x1000)
    assert hierarchy.lookup(0x1000) is None


def test_hierarchy_miss_rate(hierarchy):
    hierarchy.lookup(0x1000)
    hierarchy.fill(0x1000, 1, PAGE_SIZE_4K)
    hierarchy.lookup(0x1000)
    assert hierarchy.miss_rate() == pytest.approx(0.5)


def test_hierarchy_flush(hierarchy):
    hierarchy.fill(0x1000, 0xAA000, PAGE_SIZE_4K)
    hierarchy.flush()
    assert hierarchy.lookup(0x1000) is None
