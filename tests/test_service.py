"""Sweep-service tests: wire validation, routing, and the live server.

Three layers, cheapest first:

* pure unit tests over :mod:`repro.service.wire` (spec validation and
  digests) and the route table;
* end-to-end tests against a real server on an ephemeral port, driven
  through the typed client -- submit/poll/fetch, the warm-cache
  zero-simulation guarantee, telemetry stream ordering, and the 4xx
  surface;
* a subprocess crash test: SIGKILL ``repro serve`` mid-sweep, restart
  it on the same cache, and require the recovered job's rows to be
  bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.experiments import fig01_runtime_breakdown
from repro.exec import ExperimentExecutor, ResultCache
from repro.service import build_service
from repro.service.app import match_route
from repro.service.client import ServiceClient, ServiceError
from repro.service.wire import JobSpec, WireError, driver_catalog, parse_job_spec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# wire: spec validation and digests


def test_driver_catalog_covers_figures_and_ablations():
    catalog = driver_catalog()
    assert "fig01" in catalog and catalog["fig01"].kind == "figure"
    assert catalog["fig11_right"].workload_mode == "fixed"
    assert catalog["ablation_prefetch_latency"].workload_mode == "single"
    assert catalog["ablation_destinations"].kind == "ablation"


@pytest.mark.parametrize(
    "payload",
    [
        ["fig01"],  # not an object
        {},  # no figure
        {"figure": "fig99"},  # unknown figure
        {"figure": "fig01", "banana": 1},  # unknown key
        {"figure": "fig01", "length": 0},  # non-positive length
        {"figure": "fig01", "length": True},  # bool is not an int here
        {"figure": "fig01", "seed": -1},  # negative seed
        {"figure": "fig01", "workloads": []},  # empty list
        {"figure": "fig01", "workloads": ["nope"]},  # unknown workload
        {"figure": "fig01", "workloads": [3]},  # non-string workload
        {"figure": "fig11_right", "workloads": ["xsbench"]},  # fixed set
        {
            "figure": "ablation_prefetch_latency",
            "workloads": ["xsbench", "mcf"],
        },  # single-workload study
        {"figure": "fig01", "kernel": "vector"},  # unknown kernel
        {"figure": "fig01", "check_invariants": "always"},
        {"figure": "fig01", "max_retries": -2},
        {"figure": "fig01", "cell_timeout": 0},
        {"figure": "fig01", "allow_partial": "yes"},
    ],
)
def test_parse_job_spec_rejects(payload):
    with pytest.raises(WireError) as excinfo:
        parse_job_spec(payload)
    assert excinfo.value.context  # structured context on every rejection


def test_parse_job_spec_accepts_and_digests_stably():
    payload = {"figure": "fig01", "length": 500, "workloads": ["xsbench"]}
    first = parse_job_spec(payload)
    second = parse_job_spec(dict(payload))
    assert first == second
    assert first.digest() == second.digest()
    assert first.digest() != parse_job_spec({"figure": "fig01"}).digest()
    assert first.driver_kwargs() == {
        "seed": 0,
        "length": 500,
        "workloads": ("xsbench",),
    }


def test_single_workload_spec_maps_to_workload_kwarg():
    spec = parse_job_spec(
        {"figure": "ablation_prefetch_latency", "workloads": ["mcf"]}
    )
    assert spec.driver_kwargs() == {"seed": 0, "workload": "mcf"}


def test_jobspec_canonical_roundtrip_is_json_stable():
    spec = JobSpec(figure="fig04", length=700, workloads=("mcf", "xsbench"))
    assert json.loads(json.dumps(spec.canonical())) == spec.canonical()


# ---------------------------------------------------------------------------
# routing


def test_match_route_resolves_parameters():
    route, params, allowed = match_route("GET", "/api/jobs/j0001-cafe/events")
    assert route is not None and route.name == "events"
    assert params == {"id": "j0001-cafe"}
    assert allowed == []


def test_match_route_distinguishes_404_from_405():
    route, _, allowed = match_route("GET", "/api/nothing")
    assert route is None and allowed == []
    route, _, allowed = match_route("DELETE", "/api/jobs")
    assert route is None and set(allowed) == {"GET", "POST"}


# ---------------------------------------------------------------------------
# end-to-end over a real socket


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One live service for the whole module, on an ephemeral port."""
    cache_dir = str(tmp_path_factory.mktemp("service-cache"))
    service = build_service(cache_dir=cache_dir)
    ready = threading.Event()

    def announce(host, port):
        ready.set()

    thread = threading.Thread(
        target=service.run, args=("127.0.0.1", 0), kwargs={"announce": announce}
    )
    thread.start()
    assert ready.wait(timeout=30), "server never announced its port"
    client = ServiceClient("127.0.0.1", service.port)
    yield client, service, cache_dir
    service.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


def _reference_rows(tmp_path, **kwargs):
    """The same figure computed directly, against a private cache."""
    executor = ExperimentExecutor(cache=ResultCache(str(tmp_path / "ref-cache")))
    return fig01_runtime_breakdown(executor=executor, **kwargs)["rows"]


def test_submit_poll_fetch(server, tmp_path):
    client, _, _ = server
    job = client.submit(figure="fig01", length=420, workloads=["xsbench"])
    assert job.state == "queued"
    done = client.wait(job.id)
    assert done.state == "done"
    assert done.counters["simulated"] == 1
    payload = client.result(job.id)
    assert payload["figure"] == "fig01"
    assert payload["result"]["rows"] == _reference_rows(
        tmp_path, length=420, workloads=["xsbench"]
    )
    manifest = payload["manifest"]
    assert manifest["spec"]["figure"] == "fig01"
    assert manifest["spec"] == done.spec
    assert len(manifest["spec_sha256"]) == 64
    assert manifest["counters"]["simulated"] == 1
    assert client.manifest(job.id)["manifest"] == manifest


def test_second_identical_job_simulates_nothing(server):
    client, service, _ = server
    executor = service.runner.executor
    cold = client.wait(
        client.submit(figure="fig01", length=430, workloads=["xsbench", "mcf"]).id
    )
    assert cold.counters["simulated"] == 2
    before = executor.counters_snapshot()
    warm = client.wait(
        client.submit(figure="fig01", length=430, workloads=["xsbench", "mcf"]).id
    )
    assert warm.state == "done"
    assert warm.counters["simulated"] == 0
    assert warm.counters["memo_hits"] + warm.counters["cache_hits"] == 2
    # The executor's own counters tell the same story.
    delta = executor.counters_since(before)
    assert delta["simulated"] == 0
    assert client.result(warm.id)["result"] == client.result(cold.id)["result"]


def test_event_stream_brackets_the_job(server):
    client, _, _ = server
    job = client.submit(figure="fig01", length=440, workloads=["xsbench"])
    events = [event["event"] for event in client.events(job.id)]
    assert events[0] == "job_started"
    assert events[-1] == "stream_end"
    assert "cell_done" in events
    assert events.index("cell_done") < events.index("job_finished")
    assert events.index("job_finished") < events.index("stream_end")


def test_health_figures_and_cache_endpoints(server):
    client, _, cache_dir = server
    health = client.health()
    assert health["status"] == "ok"
    assert set(health["jobs"]) >= {"queued", "running", "done", "failed"}
    assert health["service"]["name"] == "repro-sweep-service"
    figures = client.figures()
    assert figures["figures"]["fig01"]["workloads"] == "list"
    assert "xsbench" in figures["workloads"]
    cache = client.cache()
    assert cache["root"] == cache_dir
    assert cache["entries"]["results"] >= 1  # earlier tests populated it


def test_http_error_surface(server):
    client, service, _ = server
    with pytest.raises(ServiceError) as excinfo:
        client.submit(figure="fig99")
    assert excinfo.value.status == 400
    assert "fig99" in str(excinfo.value)
    assert "known" in excinfo.value.context

    with pytest.raises(ServiceError) as excinfo:
        client.job("j9999-missing")
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/api/nothing")
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        client._request("DELETE", "/api/jobs")
    assert excinfo.value.status == 405

    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/api/jobs", body={"figure": ["fig01"]})
    assert excinfo.value.status == 400

    # A job that is not terminal yet refuses to serve a result (409);
    # create it directly in the store so it never reaches the worker.
    queued = service.store.create(parse_job_spec({"figure": "fig01", "length": 450}))
    with pytest.raises(ServiceError) as excinfo:
        client.result(queued.id)
    assert excinfo.value.status == 409
    assert excinfo.value.context["state"] == "queued"


# ---------------------------------------------------------------------------
# crash safety: kill the server mid-sweep, restart, resume


def _start_server(cache_dir):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src")),
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    assert line.startswith("serving on http://"), line
    port = int(line.rsplit(":", 1)[1])
    return process, port


def _wait_for_cell_done(path, timeout=120.0):
    """Poll a job's telemetry JSONL until one cell has completed."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path) as stream:
                if any('"event": "cell_done"' in line for line in stream):
                    return
        except FileNotFoundError:
            pass
        time.sleep(0.01)
    raise AssertionError("no cell_done in %s after %.0fs" % (path, timeout))


def test_killed_server_resumes_job_bit_identically(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = {"figure": "fig01", "length": 6000, "workloads": ["xsbench", "mcf"]}

    process, port = _start_server(cache_dir)
    try:
        client = ServiceClient("127.0.0.1", port)
        job = client.submit(**spec)
        telemetry = os.path.join(
            cache_dir, "service", "telemetry", job.id + ".jsonl"
        )
        # Let exactly part of the sweep land, then pull the plug.
        _wait_for_cell_done(telemetry)
        process.kill()
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    interrupted = json.load(
        open(os.path.join(cache_dir, "service", "jobs", job.id + ".json"))
    )
    assert interrupted["state"] in ("queued", "running")

    process, port = _start_server(cache_dir)
    try:
        client = ServiceClient("127.0.0.1", port)
        resumed = client.wait(job.id, timeout=240.0)
        assert resumed.state == "done"
        assert resumed.resumes == 1
        # The journaled cell came back from the checkpoint/cache, not a
        # re-simulation (a resumed cell is a checkpoint-verified cache
        # hit, so it counts under both ``resumed`` and ``cache_hits``).
        assert resumed.counters["resumed"] >= 1
        loaded = resumed.counters["cache_hits"] + resumed.counters["memo_hits"]
        assert resumed.counters["simulated"] + loaded == 2
        assert resumed.counters["simulated"] <= 1
        rows = client.result(job.id)["result"]["rows"]
    finally:
        process.kill()
        process.wait(timeout=30)

    executor = ExperimentExecutor(cache=ResultCache(str(tmp_path / "ref-cache")))
    reference = fig01_runtime_breakdown(
        executor=executor, length=6000, workloads=["xsbench", "mcf"]
    )["rows"]
    assert rows == reference
