"""Configuration validation tests (the Figure-9 machine contract)."""

from dataclasses import replace

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    RowPolicyConfig,
    SchedulerConfig,
    SubRowConfig,
    SystemConfig,
    TempoConfig,
    TlbConfig,
    VmConfig,
    default_system_config,
)
from repro.common.errors import ConfigError


def test_default_config_validates(config):
    assert config.validate() is config


def test_default_encodes_figure9_machine(config):
    # Two-level TLBs with split L1 arrays; L2 does not hold 1 GB pages.
    assert config.tlb.l1_entries_4k > config.tlb.l1_entries_2m > config.tlb.l1_entries_1g
    assert not config.tlb.l2_holds_1g
    # Three increasing cache levels.
    assert config.l1.size_bytes < config.l2.size_bytes < config.llc.size_bytes
    # DRAM row-buffer latencies: hit < miss <= conflict, with hits saving
    # well over half of a conflict (the paper's "as much as 66%").
    assert config.dram.row_hit_cycles < 0.5 * config.dram.row_conflict_cycles
    # TEMPO defaults: both prefetches on, 10-cycle wait, 15-cycle grace.
    assert config.tempo.enabled and config.tempo.row_prefetch and config.tempo.llc_prefetch
    assert config.tempo.wait_cycles == 10
    assert config.tempo.grace_period_cycles == 15
    # IMP defaults from prior work [44].
    assert config.imp.prefetch_table_entries == 16
    assert config.imp.indirect_pattern_detector_entries == 4
    assert config.imp.max_prefetch_distance == 16


def test_cache_config_rejects_non_power_of_two_sets():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=3 * 1024, assoc=8).validate()


def test_cache_config_rejects_unknown_replacement():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=32 * 1024, assoc=8, replacement="plru").validate()


def test_cache_num_sets():
    cache = CacheConfig(size_bytes=32 * 1024, assoc=8, line_bytes=64)
    assert cache.num_sets == 64


def test_tlb_config_rejects_indivisible_assoc():
    with pytest.raises(ConfigError):
        TlbConfig(l1_entries_4k=60, l1_assoc_4k=8).validate()


def test_core_config_requires_increasing_latencies():
    with pytest.raises(ConfigError):
        CoreConfig(l1_latency=12, l2_latency=12).validate()


def test_dram_config_requires_hit_lt_miss_le_conflict():
    with pytest.raises(ConfigError):
        DramConfig(row_hit_cycles=100, row_miss_cycles=90).validate()
    with pytest.raises(ConfigError):
        DramConfig(row_miss_cycles=140, row_conflict_cycles=130).validate()


def test_dram_config_rejects_tiny_rows():
    with pytest.raises(ConfigError):
        DramConfig(row_bytes=2048).validate()


def test_subrow_config_requires_general_slots():
    with pytest.raises(ConfigError):
        SubRowConfig(num_subrows=4, dedicated_prefetch_subrows=4).validate()


def test_subrow_config_rejects_unknown_allocation():
    with pytest.raises(ConfigError):
        SubRowConfig(allocation="random").validate()


def test_row_policy_config_rejects_unknown_policy():
    with pytest.raises(ConfigError):
        RowPolicyConfig(policy="fancy").validate()


def test_scheduler_config_rejects_unknown_policy():
    with pytest.raises(ConfigError):
        SchedulerConfig(policy="parbs").validate()


def test_scheduler_config_accepts_all_implemented_policies():
    for policy in ("fcfs", "frfcfs", "bliss", "atlas"):
        SchedulerConfig(policy=policy).validate()


def test_tempo_llc_prefetch_requires_row_prefetch():
    with pytest.raises(ConfigError):
        TempoConfig(row_prefetch=False, llc_prefetch=True).validate()


def test_vm_config_rejects_double_hugetlbfs():
    with pytest.raises(ConfigError):
        VmConfig(hugetlbfs_2m=True, hugetlbfs_1g=True).validate()


def test_vm_config_rejects_bad_memhog():
    with pytest.raises(ConfigError):
        VmConfig(memhog_fraction=1.0).validate()
    with pytest.raises(ConfigError):
        VmConfig(memhog_fraction=-0.1).validate()


def test_with_tempo_toggles_without_mutating(config):
    off = config.with_tempo(False)
    assert not off.tempo.enabled
    assert config.tempo.enabled  # original untouched
    swept = config.with_tempo(True, wait_cycles=5)
    assert swept.tempo.wait_cycles == 5
    assert config.tempo.wait_cycles == 10


def test_copy_with_overrides_top_level(config):
    copied = config.copy_with(num_cores=4)
    assert copied.num_cores == 4
    assert config.num_cores == 1


def test_system_config_rejects_shrinking_hierarchy():
    config = default_system_config()
    bad = config.copy_with(l1=CacheConfig(size_bytes=8 * 1024 * 1024, assoc=16))
    with pytest.raises(ConfigError):
        bad.validate()


def test_validation_reaches_nested_configs():
    config = default_system_config()
    bad = config.copy_with(dram=replace(config.dram, subrows=SubRowConfig(num_subrows=0)))
    with pytest.raises(ConfigError):
        bad.validate()
