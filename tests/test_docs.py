"""The docs honesty gate: every documented invocation must be real.

Documentation drifts: a flag gets renamed, a subcommand grows a new
required argument, and the README keeps showing the old spelling.  This
gate extracts every fenced ``console``/``bash`` code block from
README.md and ``docs/*.md``, finds each ``repro`` invocation (either
``python -m repro ...`` or a bare ``repro ...``), and asserts against
the real argument parser that the subcommand exists and every ``--flag``
is accepted by that subcommand.  Renaming a CLI flag without updating
the docs fails CI here.

The sweep service gets the same treatment in both directions: every
``curl`` example in ``docs/service.md`` must resolve (method + path)
against the service's real route table, and every route in that table
must appear in the page's endpoint reference.
"""

import os
import re
import shlex
import urllib.parse

import argparse

from repro.cli import build_parser
from repro.service.app import ROUTES, match_route

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FENCE = re.compile(r"```(?:console|bash)\n(.*?)```", re.S)
LINK = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")


def _doc_paths():
    paths = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            paths.append(os.path.join(docs_dir, name))
    return paths


def _command_lines(text):
    """Command lines from every console/bash fence, one per invocation."""
    for block in FENCE.findall(text):
        block = block.replace("\\\n", " ")  # join shell line continuations
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("$"):
                line = line[1:].strip()
            if not line or line.startswith("#"):
                continue
            for part in re.split(r"&&|\|\||;", line):
                part = part.strip()
                if part:
                    yield part


def _repro_argv(command):
    """The argv following the ``repro`` entry point, or ``None``."""
    try:
        tokens = shlex.split(command, comments=True)
    except ValueError:
        return None
    # Drop leading VAR=value environment assignments.
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens = tokens[1:]
    if len(tokens) >= 3 and tokens[0].startswith("python") and tokens[1] == "-m":
        if tokens[2] == "repro":
            return tokens[3:]
        return None
    if tokens and tokens[0] == "repro":
        return tokens[1:]
    return None


def _subparsers(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("CLI parser has no subcommands")


def _assert_invocation_parses(argv, commands, source):
    assert argv, "%s: empty repro invocation" % source
    name = argv[0]
    assert name in commands, (
        "%s: documented subcommand %r does not exist (have: %s)"
        % (source, name, ", ".join(sorted(commands)))
    )
    known_flags = commands[name]._option_string_actions
    for token in argv[1:]:
        if not token.startswith("-"):
            continue
        flag = token.split("=", 1)[0]
        assert flag in known_flags, (
            "%s: `repro %s` does not accept documented flag %r (have: %s)"
            % (source, name, flag, ", ".join(sorted(known_flags)))
        )


def test_every_documented_cli_invocation_is_real():
    commands = _subparsers(build_parser())
    checked = 0
    for path in _doc_paths():
        with open(path) as stream:
            text = stream.read()
        for command in _command_lines(text):
            argv = _repro_argv(command)
            if argv is None:
                continue
            _assert_invocation_parses(
                argv, commands, os.path.relpath(path, REPO_ROOT)
            )
            checked += 1
    # The gate must actually be biting: the README and docs pages carry
    # well over this many repro invocations between them.
    assert checked >= 10, "only %d repro invocations found in docs" % checked


def _http_examples(text):
    """``(method, path, command)`` for every documented curl call."""
    for command in _command_lines(text):
        try:
            tokens = shlex.split(command, comments=True)
        except ValueError:
            continue
        if not tokens or tokens[0] != "curl":
            continue
        method, path = "GET", None
        expect_method = False
        for token in tokens[1:]:
            if expect_method:
                method, expect_method = token.upper(), False
            elif token in ("-X", "--request"):
                expect_method = True
            elif token.startswith(("http://", "https://")):
                path = urllib.parse.urlsplit(token).path
        if path is not None:
            yield method, path, command


def test_every_documented_curl_example_hits_a_real_route():
    """Method + path of each documented curl example resolves against
    the service's route table (concrete job ids match the ``{id}``
    placeholder, exactly as the live dispatcher matches them)."""
    checked = 0
    for doc_path in _doc_paths():
        with open(doc_path) as stream:
            text = stream.read()
        source = os.path.relpath(doc_path, REPO_ROOT)
        for method, path, command in _http_examples(text):
            route, _, allowed = match_route(method, path)
            assert route is not None, (
                "%s documents `%s` but %s %s matches no route%s"
                % (
                    source,
                    command,
                    method,
                    path,
                    " (method should be one of: %s)" % ", ".join(allowed)
                    if allowed
                    else "",
                )
            )
            checked += 1
    # docs/service.md's worked session alone carries more than this.
    assert checked >= 6, "only %d curl examples found in docs" % checked


def test_every_service_route_is_documented():
    """The endpoint reference in docs/service.md names every route."""
    with open(os.path.join(REPO_ROOT, "docs", "service.md")) as stream:
        text = stream.read()
    for route in ROUTES:
        needle = "`%s %s`" % (route.method, route.pattern)
        assert needle in text, (
            "docs/service.md endpoint reference is missing %s" % needle
        )


def test_documented_relative_links_resolve():
    """Every relative markdown link in README/docs points at a file that
    exists (external http(s) links are out of scope)."""
    missing = []
    for path in _doc_paths():
        with open(path) as stream:
            text = stream.read()
        base = os.path.dirname(path)
        for target in LINK.findall(text):
            target = target.strip()
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not os.path.exists(os.path.join(base, target)):
                missing.append(
                    "%s -> %s" % (os.path.relpath(path, REPO_ROOT), target)
                )
    assert not missing, "broken doc links: %s" % ", ".join(missing)
