"""Tests for the high-level runner API."""

import pytest

from repro.common.config import default_system_config
from repro.sim.metrics import SimulationResult
from repro.sim.runner import (
    energy_fraction,
    run_baseline_and_tempo,
    run_workload,
    speedup_fraction,
)
from repro.workloads.registry import make_trace


def test_run_workload_by_name():
    result = run_workload("xsbench", length=1200, seed=1)
    assert isinstance(result, SimulationResult)
    assert result.core.references > 0


def test_run_workload_with_prebuilt_trace():
    trace = make_trace("mcf", length=1200, seed=1)
    result = run_workload(trace)
    assert result.core.workload_name == "mcf"


def test_run_baseline_and_tempo_shares_trace():
    baseline, tempo = run_baseline_and_tempo("graph500", length=1500, seed=1)
    assert baseline.core.references == tempo.core.references


def test_speedup_and_energy_fractions():
    baseline, tempo = run_baseline_and_tempo("xsbench", length=2500, seed=1)
    speedup = speedup_fraction(baseline, tempo)
    energy = energy_fraction(baseline, tempo)
    assert 0.0 < speedup < 0.5
    assert -0.05 < energy < 0.3


def test_explicit_config_respected():
    config = default_system_config().with_tempo(False)
    result = run_workload("mcf", config, length=800, seed=1)
    assert result.core.replay_service.total == 0  # no TEMPO classification


def test_unknown_workload_errors():
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError):
        run_workload("nonexistent", length=100)
