"""Tests for the metric structures."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.metrics import (
    CoreResult,
    DramReferenceBreakdown,
    ReplayServiceBreakdown,
    RuntimeBreakdown,
    SimulationResult,
    energy_improvement,
    max_slowdown,
    performance_improvement,
    weighted_speedup,
)


def test_runtime_fractions_sum_to_one():
    runtime = RuntimeBreakdown(1000, 300, 250, 150)
    total = sum(runtime.fraction(bucket) for bucket in ("ptw", "replay", "other", "rest"))
    assert total == pytest.approx(1.0)
    assert runtime.non_dram_cycles == 300


def test_runtime_empty_is_zero():
    assert RuntimeBreakdown().fraction("ptw") == 0.0


def test_dram_refs_fractions():
    refs = DramReferenceBreakdown()
    refs.ptw_leaf = 30
    refs.ptw_upper = 2
    refs.replay = 28
    refs.other = 40
    assert refs.demand_total == 100
    assert refs.fraction("ptw") == pytest.approx(0.32)
    assert refs.leaf_fraction_of_ptw() == pytest.approx(30 / 32)


def test_dram_refs_follow_rate():
    refs = DramReferenceBreakdown()
    refs.walks_with_dram_leaf = 50
    refs.replay_also_dram = 49
    assert refs.replay_follows_ptw_rate() == pytest.approx(0.98)
    assert DramReferenceBreakdown().replay_follows_ptw_rate() == 0.0


def test_replay_service_fractions():
    service = ReplayServiceBreakdown()
    service.llc = 80
    service.row_buffer = 15
    service.unaided = 5
    assert service.fraction("llc") == pytest.approx(0.8)
    assert service.total == 100
    assert ReplayServiceBreakdown().fraction("llc") == 0.0


def _core(cycles, refs=1000, name="w"):
    runtime = RuntimeBreakdown(total_cycles=cycles)
    return CoreResult(name, refs, runtime, DramReferenceBreakdown(), ReplayServiceBreakdown())


def test_ipc_proxy():
    core = _core(2000, refs=1000)
    assert core.ipc_proxy == pytest.approx(0.5)
    assert _core(0, refs=10).ipc_proxy == 0.0


def test_performance_improvement():
    assert performance_improvement(100, 70) == pytest.approx(0.3)
    assert performance_improvement(0, 50) == 0.0


def test_energy_improvement():
    assert energy_improvement(200.0, 180.0) == pytest.approx(0.1)


def test_weighted_speedup():
    shared = [_core(2000), _core(4000)]
    alone = [_core(1000), _core(1000)]
    # IPCs: shared (0.5, 0.25), alone (1, 1) -> WS = 0.75
    assert weighted_speedup(shared, alone) == pytest.approx(0.75)


def test_max_slowdown():
    shared = [_core(2000), _core(4000)]
    alone = [_core(1000), _core(1000)]
    assert max_slowdown(shared, alone) == pytest.approx(4.0)


def test_mismatched_lengths_rejected():
    with pytest.raises(SimulationError):
        weighted_speedup([_core(1)], [])
    with pytest.raises(SimulationError):
        max_slowdown([_core(1)], [])


def test_simulation_result_single_core_accessor():
    result = SimulationResult([_core(100)], 5.0, 0.6)
    assert result.core.cycles == 100
    assert result.total_cycles == 100
    multi = SimulationResult([_core(100), _core(200)], 5.0, 0.6)
    assert multi.total_cycles == 200
    with pytest.raises(SimulationError):
        multi.core
